"""Parallel experiment engine.

Every reproduction artifact in this repo — the Figure 1/2 region maps,
the Theorem 1-4 bound checks, the ablation sweeps — reduces to running
the :class:`~repro.core.competitive.CompetitivenessHarness` over many
independent (parameter, schedule) points.  The points are independent
and the protocols are deterministic, so the work decomposes into tasks
that can run in worker processes and still produce results that are
*bit-for-bit identical* to the serial path (asserted by
``tests/properties/test_prop_engine.py``).

Layers (mirroring the distsim substrate's layering):

``seeding``    deterministic per-task seeds derived from a root seed +
               task index via SHA-256 — stable across processes and
               interpreter runs, immune to ``PYTHONHASHSEED``.
``keys``       stable cache keys: a canonical serialization of
               (cost-model params, workload spec, algorithm set, seed)
               hashed with SHA-256; no ``id()``/dict-order dependence.
``cache``      on-disk result cache; corrupted entries are discarded,
               never raised; writes are atomic (temp file + rename) so
               concurrent workers cannot tear an entry.
``progress``   lightweight tasks-done / rate / ETA reporter in the
               style of :mod:`repro.distsim.statistics`.
``runner``     :class:`ExperimentEngine` — ``ProcessPoolExecutor``
               fan-out with a serial in-process fallback for
               ``max_workers=1``, cache short-circuiting, chunked
               submission and ordered result reassembly.
"""

from repro.engine.cache import ResultCache
from repro.engine.keys import stable_key
from repro.engine.progress import NullReporter, ProgressReporter
from repro.engine.runner import EngineStats, ExperimentEngine, Task
from repro.engine.seeding import derive_seed, rng_from, spawn_rng

__all__ = [
    "EngineStats",
    "ExperimentEngine",
    "NullReporter",
    "ProgressReporter",
    "ResultCache",
    "Task",
    "derive_seed",
    "rng_from",
    "spawn_rng",
    "stable_key",
]
