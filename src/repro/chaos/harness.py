"""The chaos harness: replay a fault plan against a live cluster.

One :func:`run_chaos` call is a complete experiment:

1. launch a resilient local cluster (retries + dedup installed, which
   fault-free parity says changes nothing until faults fire);
2. install the ambient fault plan (seeded probabilistic drops);
3. replay a seeded closed-loop workload; before each request, apply
   the fault events the plan schedules at that index — and after every
   event run one :class:`~repro.cluster.resilience.SchemeRepairer`
   round, then check ``t``-availability and (DA) join-list consistency;
4. heal everything, run a final repair round, and sweep a fault-free
   read over every node — the "no lost acknowledged writes" check;
5. report outcomes, violations, charged stats and resilience counters.

The closed loop matters: fault events apply *between* requests, so the
repair round after each event restores the invariants before the next
request can observe their violation — the induction the plan
generator's constraints are designed around.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.invariants import InvariantTracker, Violation
from repro.chaos.plan import ChaosPlan, FaultEvent, generate_plan
from repro.cluster.durability import wal_path
from repro.cluster.launcher import ClusterSpec, start_local_cluster
from repro.cluster.loadgen import ClusterClient, RequestOutcome
from repro.cluster.metrics import durability_totals, resilience_totals
from repro.cluster.resilience import RetryPolicy, SchemeRepairer
from repro.cluster.transport import FaultPlan
from repro.distsim.statistics import SimulationStats
from repro.exceptions import ClusterError, StorageError
from repro.storage.versions import ObjectVersion
from repro.storage.wal import inject_tail_corruption, inject_torn_tail

#: Damaged-log events a durable chaos run schedules when the caller
#: does not pick a count (capped by the number of crash intervals).
DEFAULT_TORN_WRITES = 2


@dataclass
class ChaosConfig:
    """Parameters of one chaos experiment (all defaults CI-friendly)."""

    protocol: str = "DA"
    nodes: int = 5
    #: Availability threshold; the launch scheme is the first ``t``
    #: processors (DA primary: the highest of them, the repo default).
    t: int = 2
    requests: int = 200
    write_fraction: float = 0.3
    seed: int = 0
    crashes: Optional[int] = None
    partitions: int = 1
    drop_bursts: Optional[int] = None
    drop_probability: float = 0.02
    #: Transmissions per message/request (1 send + attempts-1 retries).
    attempts: int = 4
    transport: str = "auto"
    exec_timeout: float = 15.0
    client_timeout: float = 20.0
    #: Give every node a WAL + snapshots and route recoveries through
    #: the tiered log-replay path (see docs/durability.md).
    durable: bool = False
    #: Where the per-node state dirs live; ``None`` = a temp dir owned
    #: by the run.  Setting this implies ``durable``.
    state_dir: Optional[str] = None
    #: Damaged-log events (torn tails / flipped bytes) to schedule on
    #: crashed nodes' WALs; ``None`` = a durable default, 0 disables.
    torn_writes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ClusterError("chaos needs at least two nodes")
        if not 2 <= self.t <= self.nodes:
            raise ClusterError("need 2 <= t <= nodes")
        if self.attempts < 2:
            raise ClusterError("chaos needs at least two attempts to retry")
        if self.state_dir is not None:
            self.durable = True
        if self.torn_writes and not self.durable:
            raise ClusterError(
                "--torn-writes shears write-ahead logs: it needs --durable"
            )

    @property
    def processors(self) -> Tuple[int, ...]:
        return tuple(range(1, self.nodes + 1))

    @property
    def scheme(self) -> Tuple[int, ...]:
        return self.processors[: self.t]

    @property
    def primary(self) -> int:
        return max(self.scheme)

    @property
    def effective_torn_writes(self) -> int:
        if not self.durable:
            return 0
        if self.torn_writes is None:
            return DEFAULT_TORN_WRITES
        return self.torn_writes

    def build_plan(self) -> ChaosPlan:
        return generate_plan(
            protocol=self.protocol,
            processors=self.processors,
            scheme=self.scheme,
            primary=self.primary,
            requests=self.requests,
            write_fraction=self.write_fraction,
            seed=self.seed,
            crashes=self.crashes,
            partitions=self.partitions,
            drop_bursts=self.drop_bursts,
            drop_probability=self.drop_probability,
            attempts=self.attempts,
            torn_writes=self.effective_torn_writes,
        )


@dataclass
class ChaosResult:
    """Everything one chaos run produced."""

    plan: ChaosPlan
    violations: List[Violation]
    writes_acked: int
    writes_rejected: int
    reads_ok: int
    reads_failed: int
    latest_acked: int
    repair_rounds: int
    client_retries: int
    stats: SimulationStats
    resilience: Dict[str, int] = field(default_factory=dict)
    #: WAL/snapshot counters (durable runs only; see durability_totals).
    durability: Dict[str, int] = field(default_factory=dict)
    #: How often each recovery tier fired (``log-fresh`` etc.).
    recovery_tiers: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [
            self.plan.describe(),
            (
                f"requests: {self.reads_ok + self.writes_acked} ok "
                f"({self.writes_acked} writes acked, {self.reads_ok} reads), "
                f"{self.writes_rejected} writes rejected, "
                f"{self.reads_failed} reads failed; "
                f"latest acknowledged version {self.latest_acked}"
            ),
            (
                f"resilience: {self.repair_rounds} repair rounds, "
                f"{self.resilience.get('repairs_sent', 0)} repairs, "
                f"{self.resilience.get('retries_sent', 0)} node retries, "
                f"{self.client_retries} client retries, "
                f"{self.resilience.get('dedup_hits', 0)} dedup hits, "
                f"{self.resilience.get('degraded_rejections', 0)} degraded "
                "rejections"
            ),
            (
                f"charged: {self.stats.control_messages} control, "
                f"{self.stats.data_messages} data, "
                f"{self.stats.io_reads}+{self.stats.io_writes} I/O, "
                f"{self.stats.dropped_messages} drops"
            ),
        ]
        if self.durability:
            tiers = ", ".join(
                f"{tier} x{count}"
                for tier, count in sorted(self.recovery_tiers.items())
            ) or "none"
            lines.append(
                f"durability: {self.durability.get('wal_appends', 0)} WAL "
                f"appends, {self.durability.get('snapshots_written', 0)} "
                f"snapshots, {self.durability.get('wal_replayed', 0)} "
                f"records replayed, "
                f"{self.durability.get('wal_truncations', 0)} damage "
                f"truncations, {self.durability.get('fresh_rejoins', 0)} "
                f"fresh rejoins; recoveries: {tiers}"
            )
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines += ["  " + violation.describe() for violation in self.violations]
        else:
            lines.append("invariants: all held")
        return "\n".join(lines)


class _FaultState:
    """Composes the ambient plan, the active partition and drop bursts
    into per-sender :class:`FaultPlan` objects, and installs them."""

    def __init__(self, cluster, plan: ChaosPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.partition: Tuple[Tuple[int, ...], ...] = ()

    def _plan_for(
        self, sender: int, budgets: Dict[Tuple[int, int], int]
    ) -> FaultPlan:
        return FaultPlan(
            drop_probability=self.plan.drop_probability,
            # Decorrelate the per-sender drop streams under one seed.
            seed=self.plan.seed * 31 + sender,
            partitions=tuple(frozenset(group) for group in self.partition),
            drop_next=dict(budgets),
        )

    async def install_all(self) -> None:
        for node_id in self.plan.processors:
            await self.cluster.set_fault_plan(
                self._plan_for(node_id, {}), nodes=[node_id]
            )

    async def apply_drops(self, event: FaultEvent) -> None:
        by_sender: Dict[int, Dict[Tuple[int, int], int]] = {}
        for sender, receiver, count in event.budgets:
            by_sender.setdefault(sender, {})[(sender, receiver)] = count
        for sender, budgets in by_sender.items():
            await self.cluster.set_fault_plan(
                self._plan_for(sender, budgets), nodes=[sender]
            )

    async def set_partition(
        self, groups: Tuple[Tuple[int, ...], ...]
    ) -> None:
        self.partition = groups
        await self.install_all()

    async def clear_all(self) -> None:
        self.partition = ()
        await self.cluster.set_fault_plan(None)

    @property
    def majority(self) -> Optional[Tuple[int, ...]]:
        return self.partition[0] if self.partition else None


async def run_chaos(config: ChaosConfig) -> ChaosResult:
    """Run one seeded chaos experiment; see the module docstring."""
    plan = config.build_plan()
    workload_rng = random.Random(config.seed + 1)
    policy = RetryPolicy(
        attempts=config.attempts,
        base_delay=0.005,
        max_delay=0.08,
        seed=config.seed,
    )
    tempdir: Optional[tempfile.TemporaryDirectory] = None
    state_root = config.state_dir
    if config.durable and state_root is None:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        state_root = tempdir.name
    spec = ClusterSpec(
        processors=plan.processors,
        scheme=frozenset(plan.scheme),
        protocol=plan.protocol,
        primary=plan.primary,
        transport=config.transport,
        exec_timeout=config.exec_timeout,
        resilience=policy,
        state_dir=state_root if config.durable else None,
    )
    cluster = await start_local_cluster(spec)
    client = ClusterClient(
        cluster.addresses, timeout=config.client_timeout, retry=policy
    )
    repairer = SchemeRepairer(cluster, t=config.t)
    tracker = InvariantTracker(
        t=config.t,
        core=(
            set(plan.scheme) - {plan.primary}
            if plan.protocol == "DA"
            else set()
        ),
    )
    faults = _FaultState(cluster, plan)
    crashed: set = set()
    client_retries = 0
    next_number = 0
    next_rid = 0

    async def repair_and_check(at: int) -> None:
        report = await repairer.repair_round(reachable=faults.majority)
        tracker.check_repair(at, report)
        statuses = await cluster.status_all(nodes=faults.majority)
        tracker.check_join_lists(at, statuses)
        tracker.check_durable_floors(at, statuses)

    async def apply_event(event: FaultEvent) -> None:
        if event.kind == "crash":
            await cluster.crash(event.node)
            crashed.add(event.node)
        elif event.kind == "recover":
            reply = await cluster.recover(event.node)
            tracker.check_recovery(event.at, event.node, reply)
            crashed.discard(event.node)
        elif event.kind in ("torn", "corrupt"):
            # Damage the crashed victim's WAL tail — latent until the
            # CRC framing detects it at replay time.  No repair round:
            # nothing observable changed yet.  A victim that never
            # journaled anything has no log to damage; skip.
            if state_root is None:
                return
            path = wal_path(state_root, event.node)
            try:
                if event.kind == "torn":
                    inject_torn_tail(path, event.amount)
                else:
                    inject_tail_corruption(
                        path, offset_from_end=event.amount
                    )
            except StorageError:
                pass
            return
        elif event.kind == "partition":
            await faults.set_partition(event.groups)
        elif event.kind == "heal":
            await faults.set_partition(())
        elif event.kind == "drops":
            await faults.apply_drops(event)
            return  # retryable by construction; no repair needed
        await repair_and_check(event.at)

    try:
        await faults.install_all()
        for index in range(1, plan.requests + 1):
            for event in plan.events_at(index):
                await apply_event(event)
            reachable = faults.majority or plan.processors
            candidates = [p for p in reachable if p not in crashed]
            origin = workload_rng.choice(candidates)
            next_rid += 1
            if workload_rng.random() < plan.write_fraction:
                next_number += 1  # advances even if the write fails
                outcome = await client.execute(
                    origin,
                    "write",
                    next_rid,
                    ObjectVersion(next_number, origin),
                )
                tracker.record_write(index, next_number, outcome)
            else:
                outcome = await client.execute(origin, "read", next_rid)
                tracker.record_read(index, outcome)
            client_retries += outcome.retries

        # Heal, recover, repair — then the lost-update sweep: with no
        # faults left, every node must serve the latest acknowledged
        # version (or a newer issued one that landed without its ack).
        await faults.clear_all()
        for node_id in sorted(crashed):
            reply = await cluster.recover(node_id)
            tracker.check_recovery(plan.requests + 1, node_id, reply)
        crashed.clear()
        await repair_and_check(plan.requests + 1)
        for node_id in plan.processors:
            next_rid += 1
            outcome = await client.execute(node_id, "read", next_rid)
            if not outcome.ok:
                tracker.violations.append(
                    Violation(
                        "final-sweep",
                        plan.requests + 1,
                        f"fault-free read at node {node_id} failed: "
                        f"{outcome.error}",
                    )
                )
            else:
                tracker.record_read(plan.requests + 1, outcome)

        metrics = await cluster.metrics()
        stats = await cluster.aggregate_stats()
        extras = resilience_totals(metrics.values())
        durability = (
            durability_totals(metrics.values()) if config.durable else {}
        )
    finally:
        await client.close()
        await cluster.stop()
        if tempdir is not None:
            tempdir.cleanup()

    return ChaosResult(
        plan=plan,
        violations=tracker.violations,
        writes_acked=tracker.writes_acked,
        writes_rejected=tracker.writes_rejected,
        reads_ok=tracker.reads_ok,
        reads_failed=tracker.reads_failed,
        latest_acked=tracker.latest_acked,
        repair_rounds=repairer.rounds,
        client_retries=client_retries,
        stats=stats,
        resilience=extras,
        durability=durability,
        recovery_tiers=dict(tracker.recovery_tiers),
    )
