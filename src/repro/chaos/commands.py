"""`repro chaos` — seeded fault injection against a live cluster.

One leaf command: generate a deterministic fault plan from the seed,
replay a seeded workload while the plan fires, repair after every
event, and exit non-zero if any invariant (read freshness, no lost
acknowledged writes, ``t``-availability, DA join-list consistency) was
violated.  ``--plan-only`` prints the schedule without running it —
useful for inspecting what a seed would do before replaying it.
"""

from __future__ import annotations

import asyncio
import json

from repro.chaos.harness import ChaosConfig, run_chaos


def cmd_chaos(args) -> int:
    config = ChaosConfig(
        protocol=args.protocol.upper(),
        nodes=args.nodes,
        t=args.t,
        requests=args.requests,
        write_fraction=args.write_fraction,
        seed=args.seed,
        crashes=args.crashes,
        partitions=args.partitions,
        drop_bursts=args.drop_bursts,
        drop_probability=args.drop_probability,
        attempts=args.attempts,
        transport=args.transport,
        durable=args.durable,
        state_dir=args.state_dir,
        torn_writes=args.torn_writes,
    )
    if args.plan_only:
        plan = config.build_plan()
        if args.plan_json:
            print(json.dumps(plan.to_wire(), indent=2, sort_keys=True))
        else:
            print(plan.describe())
        return 0
    result = asyncio.run(run_chaos(config))
    print(result.describe())
    return 0 if result.ok else 1


def add_chaos_parser(subparsers) -> None:
    """Register the ``chaos`` subcommand on the root parser."""
    chaos = subparsers.add_parser(
        "chaos",
        help="seeded fault injection with invariant checking "
             "(crashes, drops, partitions + scheme repair)",
    )
    chaos.add_argument(
        "--protocol", choices=["SA", "DA", "sa", "da"], default="DA"
    )
    chaos.add_argument(
        "--nodes", type=int, default=5, help="processor count"
    )
    chaos.add_argument(
        "--t", type=int, default=2,
        help="availability threshold; the scheme is processors 1..t",
    )
    chaos.add_argument(
        "--requests", type=int, default=200,
        help="workload length (closed loop)",
    )
    chaos.add_argument("--write-fraction", type=float, default=0.3)
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="drives the fault plan, the workload and every retry/drop "
             "decision — replaying a seed replays the run",
    )
    chaos.add_argument(
        "--crashes", type=int, default=None,
        help="crash/recovery pairs (default: scales with --requests)",
    )
    chaos.add_argument(
        "--partitions", type=int, default=1,
        help="partition windows (minority side drawn from non-scheme "
             "nodes; 0 disables)",
    )
    chaos.add_argument(
        "--drop-bursts", type=int, default=None,
        help="deterministic drop-next bursts (default: scales)",
    )
    chaos.add_argument(
        "--drop-probability", type=float, default=0.02,
        help="ambient per-message drop probability",
    )
    chaos.add_argument(
        "--attempts", type=int, default=4,
        help="transmissions per message (1 send + N-1 retries)",
    )
    chaos.add_argument(
        "--transport", choices=["auto", "unix", "tcp"], default="auto"
    )
    chaos.add_argument(
        "--durable", action="store_true",
        help="give every node a WAL + snapshots; recoveries take the "
             "tiered log-replay path (see docs/durability.md)",
    )
    chaos.add_argument(
        "--state-dir", default=None,
        help="root for the per-node WALs (implies --durable; default: "
             "a temp dir owned by the run)",
    )
    chaos.add_argument(
        "--torn-writes", type=int, default=None,
        help="damaged-log events (torn tails / flipped bytes) on "
             "crashed nodes' WALs; needs --durable "
             "(default: 2 when durable, else 0)",
    )
    chaos.add_argument(
        "--plan-only", action="store_true",
        help="print the generated fault schedule and exit",
    )
    chaos.add_argument(
        "--plan-json", action="store_true",
        help="with --plan-only: emit the plan as versioned JSON "
             "(ChaosPlan.to_wire, replayable across releases)",
    )
    chaos.set_defaults(handler=cmd_chaos)
