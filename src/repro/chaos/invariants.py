"""Invariant checkers the chaos harness runs during and after a run.

The freshness rule is the paper's model relaxed just enough for
failures: a successful read must return the **latest acknowledged**
version — or a *newer issued-but-unacknowledged* one, because a write
the cluster rejected (or whose acknowledgement was lost) may still have
landed its copies before failing.  What can never happen is a read
older than an acknowledged write: that would be a lost update.

``t``-availability and join-list consistency are checked against node
status reports right after each repair round, which is the only moment
they are guaranteed: between rounds a fresh crash may transiently
violate them — that is exactly what the next round repairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from repro.cluster.loadgen import RequestOutcome


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to a request index."""

    invariant: str
    at: int
    detail: str

    def describe(self) -> str:
        return f"[{self.invariant}] @request {self.at}: {self.detail}"


@dataclass
class InvariantTracker:
    """Accumulates ground truth and violations over one chaos run."""

    t: int
    core: Set[int] = field(default_factory=set)
    #: Highest version number a write acknowledged to the client.
    latest_acked: int = 0
    #: Every version number ever handed to a write (acked or not).
    #: Numbers are never reused: the harness advances the counter on
    #: issue, not on acknowledgement.
    issued: Set[int] = field(default_factory=lambda: {0})
    violations: List[Violation] = field(default_factory=list)
    writes_acked: int = 0
    writes_rejected: int = 0
    reads_ok: int = 0
    reads_failed: int = 0
    #: Per-node durable floor: the version number a ``log-fresh``
    #: recovery restored from the local log.  A node's stored version
    #: may only grow from there — regressing below the floor would mean
    #: durable state was lost after the log had proven it survived.
    durable_floors: Dict[int, int] = field(default_factory=dict)
    #: Recovery-tier histogram (``log-fresh``, ``log-stale``, ...),
    #: reported in the chaos result for auditing.
    recovery_tiers: Dict[str, int] = field(default_factory=dict)

    def _flag(self, invariant: str, at: int, detail: str) -> None:
        self.violations.append(Violation(invariant, at, detail))

    # -- workload outcomes -------------------------------------------------

    def record_write(self, at: int, number: int, outcome: RequestOutcome) -> None:
        self.issued.add(number)
        if not outcome.ok:
            self.writes_rejected += 1
            return
        self.writes_acked += 1
        if number <= self.latest_acked:
            self._flag(
                "write-order",
                at,
                f"acknowledged write {number} does not advance past "
                f"latest acknowledged {self.latest_acked}",
            )
            return
        self.latest_acked = number

    def record_read(self, at: int, outcome: RequestOutcome) -> None:
        if not outcome.ok:
            self.reads_failed += 1
            return
        self.reads_ok += 1
        got = outcome.version.number if outcome.version is not None else None
        if got == self.latest_acked:
            return
        if got is not None and got > self.latest_acked and got in self.issued:
            return  # an unacknowledged-but-issued newer version: allowed
        self._flag(
            "read-freshness",
            at,
            f"read returned version {got}, latest acknowledged is "
            f"{self.latest_acked} (issued: newer unacked allowed)",
        )

    # -- post-repair-round checks ------------------------------------------

    def check_repair(self, at: int, report) -> None:
        """``t``-availability: the round must end with >= t holders."""
        if report.degraded or len(report.holders) < self.t:
            self._flag(
                "t-availability",
                at,
                f"repair round {report.round_id} left holders "
                f"{list(report.holders)} (< t={self.t}): "
                f"{report.describe()}",
            )

    def check_join_lists(
        self, at: int, statuses: Mapping[int, Mapping[str, Any]]
    ) -> None:
        """DA: every live non-core valid-copy holder must be recorded in
        a live core member's join-list (else a write would miss it)."""
        if not self.core:
            return
        recorded: Set[int] = set()
        for member in self.core:
            status = statuses.get(member)
            if status is None or status.get("crashed"):
                continue
            recorded.update(int(n) for n in status.get("join_list", ()))
        orphans = sorted(
            node
            for node, status in statuses.items()
            if node not in self.core
            and not status.get("crashed")
            and status.get("holds_valid_copy")
            and node not in recorded
        )
        if orphans:
            self._flag(
                "join-list-consistency",
                at,
                f"valid-copy holders {orphans} are in no live core "
                f"member's join-list (recorded: {sorted(recorded)})",
            )

    # -- durability checks -------------------------------------------------

    def check_recovery(
        self, at: int, node: int, reply: Mapping[str, Any]
    ) -> None:
        """No lost durable state: a ``log-fresh`` rejoin may only
        restore a version the harness actually issued, and never one
        older than the latest acknowledged write — either would mean
        the node is serving durable state that cannot be real."""
        tier = str(reply.get("tier", "volatile"))
        self.recovery_tiers[tier] = self.recovery_tiers.get(tier, 0) + 1
        if tier != "log-fresh":
            return
        version = reply.get("version") or {}
        number = version.get("number")
        if number is None or int(number) not in self.issued:
            self._flag(
                "no-lost-durable-state",
                at,
                f"node {node} fresh-rejoined with version {number}, "
                "which was never issued",
            )
            return
        number = int(number)
        if number < self.latest_acked:
            self._flag(
                "no-lost-durable-state",
                at,
                f"node {node} fresh-rejoined with version {number} < "
                f"latest acknowledged {self.latest_acked} — the "
                "freshness probe vouched for stale state",
            )
            return
        self.durable_floors[node] = max(
            number, self.durable_floors.get(node, 0)
        )

    def check_durable_floors(
        self, at: int, statuses: Mapping[int, Mapping[str, Any]]
    ) -> None:
        """A node that fresh-rejoined at version ``f`` must never store
        a version below ``f`` again (stored versions only grow)."""
        for node, floor in sorted(self.durable_floors.items()):
            status = statuses.get(node)
            if status is None or status.get("crashed"):
                continue
            version = status.get("version") or {}
            number = version.get("number")
            if number is not None and int(number) < floor:
                self._flag(
                    "no-lost-durable-state",
                    at,
                    f"node {node} stores version {number}, below its "
                    f"durable floor {floor} from a log-fresh rejoin",
                )

    @property
    def ok(self) -> bool:
        return not self.violations
