"""Deterministic fault schedules for chaos runs.

A :class:`ChaosPlan` is a pure function of its parameters and seed: the
same seed always yields the same events at the same request indices, so
a violating run replays exactly.  The generator enforces the
constraints under which the repair protocol can keep the paper's
``t``-availability invariant *inductively* (a repair round runs after
every event, so each constraint only needs to hold one event at a
time):

* at most ``t - 1`` processors are crashed concurrently, and at least
  one core member (DA) / scheme member stays up, so a donor with the
  latest version always survives;
* every crash is paired with a recovery later in the schedule;
* crashes and recoveries never fire inside a partition window, and
  partition windows never overlap;
* the partition's majority group contains the whole launch scheme and
  the primary, so reads stay serviceable on the majority side (writes
  may still be rejected degraded — that is behavior, not violation);
* deterministic drop bursts never exceed ``attempts - 1`` messages, so
  a retrying sender always gets one attempt through.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ClusterError

#: Wire-format version of a serialized :class:`ChaosPlan`.  Bumped when
#: the plan schema changes shape; ``from_wire`` accepts every version up
#: to the current one (older plans deserialize with defaults) and
#: rejects newer ones, so saved ``--plan-only`` schedules replay across
#: releases.  History: 1 = PR-4 plans (implicit, no version field);
#: 2 = adds ``schema_version``, ``FaultEvent.amount`` and the
#: ``torn``/``corrupt`` durability-damage kinds.
SCHEMA_VERSION = 2

#: Ordering of simultaneous events (same ``at``).  Mirrors the PR-4
#: alphabetical order for the original kinds — existing seeds replay
#: byte-identically — and slots WAL damage (``torn``/``corrupt``)
#: *before* ``recover``, because damage inflicted on a crashed node's
#: log must be on disk before that node replays it.
_KIND_PRIORITY = {
    "crash": 0,
    "drops": 1,
    "heal": 2,
    "partition": 3,
    "torn": 4,
    "corrupt": 4,
    "recover": 5,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, applied *before* request ``at`` is issued.

    ``kind`` is one of ``crash`` / ``recover`` (``node`` set),
    ``partition`` / ``heal`` (``groups`` set for ``partition``),
    ``drops`` (``budgets`` maps directed links to drop-next counts), or
    ``torn`` / ``corrupt`` (``node`` and ``amount`` set: shear
    ``amount`` bytes off / flip a byte ``amount`` from the end of a
    crashed node's write-ahead log before it recovers).
    """

    at: int
    kind: str
    node: Optional[int] = None
    groups: Tuple[Tuple[int, ...], ...] = ()
    budgets: Tuple[Tuple[int, int, int], ...] = ()
    amount: int = 0

    def describe(self) -> str:
        if self.kind in ("crash", "recover"):
            return f"@{self.at} {self.kind} node {self.node}"
        if self.kind == "torn":
            return (
                f"@{self.at} torn write: shear {self.amount} byte(s) "
                f"off node {self.node}'s log"
            )
        if self.kind == "corrupt":
            return (
                f"@{self.at} corrupt: flip byte -{self.amount} of "
                f"node {self.node}'s log"
            )
        if self.kind == "partition":
            rendered = " | ".join(str(list(group)) for group in self.groups)
            return f"@{self.at} partition {rendered}"
        if self.kind == "heal":
            return f"@{self.at} heal partition"
        links = ", ".join(f"{s}->{r}x{n}" for s, r, n in self.budgets)
        return f"@{self.at} drop bursts {links}"

    def to_wire(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "kind": self.kind,
            "node": self.node,
            "groups": [list(group) for group in self.groups],
            "budgets": [list(budget) for budget in self.budgets],
            "amount": self.amount,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            at=int(wire["at"]),
            kind=str(wire["kind"]),
            node=None if wire.get("node") is None else int(wire["node"]),
            groups=tuple(
                tuple(int(p) for p in group)
                for group in wire.get("groups", ())
            ),
            budgets=tuple(
                (int(s), int(r), int(n))
                for s, r, n in wire.get("budgets", ())
            ),
            amount=int(wire.get("amount", 0)),
        )


@dataclass(frozen=True)
class ChaosPlan:
    """A complete, replayable chaos schedule."""

    seed: int
    protocol: str
    processors: Tuple[int, ...]
    scheme: Tuple[int, ...]
    primary: int
    requests: int
    write_fraction: float
    drop_probability: float
    events: Tuple[FaultEvent, ...] = ()
    schema_version: int = SCHEMA_VERSION

    def events_at(self, index: int) -> List[FaultEvent]:
        return [event for event in self.events if event.at == index]

    def describe(self) -> str:
        lines = [
            f"chaos plan (seed {self.seed}, schema v{self.schema_version}): "
            f"{self.protocol} on "
            f"{len(self.processors)} nodes, scheme {list(self.scheme)}, "
            f"primary {self.primary}, {self.requests} requests, "
            f"p(drop)={self.drop_probability}",
        ]
        lines += ["  " + event.describe() for event in self.events]
        return "\n".join(lines)

    # -- serialization (`repro chaos --plan-only --save`) ------------------

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready dict, stable across releases (see SCHEMA_VERSION)."""
        return {
            "schema_version": self.schema_version,
            "seed": self.seed,
            "protocol": self.protocol,
            "processors": list(self.processors),
            "scheme": list(self.scheme),
            "primary": self.primary,
            "requests": self.requests,
            "write_fraction": self.write_fraction,
            "drop_probability": self.drop_probability,
            "events": [event.to_wire() for event in self.events],
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "ChaosPlan":
        """Rebuild a saved plan; refuse schemas newer than this release.

        Plans saved before the version field existed (PR-4) carry no
        ``schema_version`` key and deserialize as version 1.
        """
        version = int(wire.get("schema_version", 1))
        if version > SCHEMA_VERSION:
            raise ClusterError(
                f"chaos plan schema v{version} is newer than this "
                f"release understands (max v{SCHEMA_VERSION}); "
                "regenerate the plan or upgrade"
            )
        return cls(
            seed=int(wire["seed"]),
            protocol=str(wire["protocol"]),
            processors=tuple(int(p) for p in wire["processors"]),
            scheme=tuple(int(p) for p in wire["scheme"]),
            primary=int(wire["primary"]),
            requests=int(wire["requests"]),
            write_fraction=float(wire["write_fraction"]),
            drop_probability=float(wire["drop_probability"]),
            events=tuple(
                FaultEvent.from_wire(event) for event in wire["events"]
            ),
            schema_version=version,
        )


def _inside(index: int, windows: Sequence[Tuple[int, int]]) -> bool:
    return any(start <= index <= end for start, end in windows)


def generate_plan(
    protocol: str,
    processors: Sequence[int],
    scheme: Sequence[int],
    primary: int,
    requests: int,
    write_fraction: float,
    seed: int,
    crashes: Optional[int] = None,
    partitions: int = 1,
    drop_bursts: Optional[int] = None,
    drop_probability: float = 0.02,
    attempts: int = 4,
    torn_writes: int = 0,
) -> ChaosPlan:
    """Derive a fault schedule from a seed under the safety constraints.

    ``torn_writes`` > 0 additionally damages up to that many crashed
    nodes' write-ahead logs (a torn tail or a flipped byte) right
    before they recover — only meaningful when the cluster runs with a
    ``state_dir``.  The damage draws happen *after* every other draw,
    so for any seed the ``torn_writes=0`` plan is a strict prefix of
    the damaged one: existing saved seeds replay unchanged.
    """
    processors = tuple(sorted(int(p) for p in processors))
    scheme_t = tuple(sorted(int(p) for p in scheme))
    if requests < 20:
        raise ClusterError("a chaos run needs at least 20 requests")
    if primary not in scheme_t:
        raise ClusterError(f"primary {primary} is not in scheme {scheme_t}")
    t = len(scheme_t)
    core = tuple(p for p in scheme_t if p != primary)
    rng = random.Random(seed)
    if crashes is None:
        crashes = max(2, requests // 80)
    if drop_bursts is None:
        drop_bursts = max(2, requests // 60)

    events: List[FaultEvent] = []

    # Partition windows first (crash intervals must avoid them).  The
    # minority side is carved out of the non-scheme processors, so the
    # majority keeps the scheme and the primary.
    windows: List[Tuple[int, int]] = []
    outside = [p for p in processors if p not in scheme_t]
    if partitions > 0 and outside:
        span = requests // (2 * partitions + 1)
        for index in range(partitions):
            if span < 6:
                break
            start = (2 * index + 1) * span + rng.randrange(max(1, span // 3))
            end = min(start + max(4, span // 2), requests - 2)
            if start >= end:
                continue
            minority_size = rng.randint(1, max(1, len(outside) // 2))
            minority = tuple(sorted(rng.sample(outside, minority_size)))
            majority = tuple(
                sorted(p for p in processors if p not in minority)
            )
            windows.append((start, end))
            events.append(
                FaultEvent(at=start, kind="partition", groups=(majority, minority))
            )
            events.append(FaultEvent(at=end, kind="heal"))

    # Crash/recovery pairs outside the partition windows.  Track crash
    # intervals so concurrency stays under t and a core member survives.
    intervals: List[Tuple[int, int, int]] = []  # (start, end, node)

    def concurrent(start: int, end: int) -> List[int]:
        return [
            node
            for s, e, node in intervals
            if not (e < start or s > end)
        ]

    for _ in range(crashes):
        for _ in range(64):  # placement attempts for this crash
            start = rng.randint(2, max(2, requests - 12))
            length = rng.randint(4, 10)
            end = min(start + length, requests - 2)
            if _inside(start, windows) or _inside(end, windows):
                continue
            if any(_inside(i, windows) for i in range(start, end + 1)):
                continue
            overlapping = concurrent(start, end)
            if len(overlapping) >= t - 1:
                continue
            down = set(overlapping)
            # Keep at least one core member up (DA stays serviceable)
            # and never let the whole scheme be down at once.
            candidates = [
                node
                for node in processors
                if node not in down
                and bool(set(core) - down - {node})
                and bool(set(scheme_t) - down - {node})
            ]
            if not candidates:
                continue
            victim = rng.choice(candidates)
            intervals.append((start, end, victim))
            events.append(FaultEvent(at=start, kind="crash", node=victim))
            events.append(FaultEvent(at=end, kind="recover", node=victim))
            break

    # Deterministic drop bursts: small budgets on random links, always
    # retryable within the sender's attempt budget.
    for _ in range(drop_bursts):
        at = rng.randint(2, requests - 1)
        count = rng.randint(1, 3)
        budgets: Dict[Tuple[int, int], int] = {}
        for _ in range(count):
            sender, receiver = rng.sample(processors, 2)
            budgets[(sender, receiver)] = rng.randint(
                1, max(1, attempts - 1)
            )
        events.append(
            FaultEvent(
                at=at,
                kind="drops",
                budgets=tuple(
                    (s, r, n) for (s, r), n in sorted(budgets.items())
                ),
            )
        )

    # WAL damage last, so every RNG draw above is independent of
    # ``torn_writes`` (determinism contract in the docstring).  Each
    # damaged node gets its event at the *end* of its crash interval:
    # the log is sheared/flipped while the node is still down, and the
    # kind-priority sort applies it before the recover at that index.
    if torn_writes > 0 and intervals:
        count = min(torn_writes, len(intervals))
        picks = sorted(rng.sample(range(len(intervals)), count))
        for pick in picks:
            _, end, victim = intervals[pick]
            if rng.random() < 0.5:
                kind, amount = "torn", rng.randint(1, 32)
            else:
                kind, amount = "corrupt", rng.randint(1, 8)
            events.append(
                FaultEvent(at=end, kind=kind, node=victim, amount=amount)
            )

    events.sort(
        key=lambda event: (
            event.at,
            _KIND_PRIORITY.get(event.kind, len(_KIND_PRIORITY)),
            event.node or 0,
        )
    )
    return ChaosPlan(
        seed=seed,
        protocol=protocol.strip().upper(),
        processors=processors,
        scheme=scheme_t,
        primary=primary,
        requests=requests,
        write_fraction=write_fraction,
        drop_probability=drop_probability,
        events=tuple(events),
    )
