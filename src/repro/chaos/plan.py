"""Deterministic fault schedules for chaos runs.

A :class:`ChaosPlan` is a pure function of its parameters and seed: the
same seed always yields the same events at the same request indices, so
a violating run replays exactly.  The generator enforces the
constraints under which the repair protocol can keep the paper's
``t``-availability invariant *inductively* (a repair round runs after
every event, so each constraint only needs to hold one event at a
time):

* at most ``t - 1`` processors are crashed concurrently, and at least
  one core member (DA) / scheme member stays up, so a donor with the
  latest version always survives;
* every crash is paired with a recovery later in the schedule;
* crashes and recoveries never fire inside a partition window, and
  partition windows never overlap;
* the partition's majority group contains the whole launch scheme and
  the primary, so reads stay serviceable on the majority side (writes
  may still be rejected degraded — that is behavior, not violation);
* deterministic drop bursts never exceed ``attempts - 1`` messages, so
  a retrying sender always gets one attempt through.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ClusterError


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, applied *before* request ``at`` is issued.

    ``kind`` is one of ``crash`` / ``recover`` (``node`` set),
    ``partition`` / ``heal`` (``groups`` set for ``partition``), or
    ``drops`` (``budgets`` maps directed links to drop-next counts).
    """

    at: int
    kind: str
    node: Optional[int] = None
    groups: Tuple[Tuple[int, ...], ...] = ()
    budgets: Tuple[Tuple[int, int, int], ...] = ()

    def describe(self) -> str:
        if self.kind in ("crash", "recover"):
            return f"@{self.at} {self.kind} node {self.node}"
        if self.kind == "partition":
            rendered = " | ".join(str(list(group)) for group in self.groups)
            return f"@{self.at} partition {rendered}"
        if self.kind == "heal":
            return f"@{self.at} heal partition"
        links = ", ".join(f"{s}->{r}x{n}" for s, r, n in self.budgets)
        return f"@{self.at} drop bursts {links}"


@dataclass(frozen=True)
class ChaosPlan:
    """A complete, replayable chaos schedule."""

    seed: int
    protocol: str
    processors: Tuple[int, ...]
    scheme: Tuple[int, ...]
    primary: int
    requests: int
    write_fraction: float
    drop_probability: float
    events: Tuple[FaultEvent, ...] = ()

    def events_at(self, index: int) -> List[FaultEvent]:
        return [event for event in self.events if event.at == index]

    def describe(self) -> str:
        lines = [
            f"chaos plan (seed {self.seed}): {self.protocol} on "
            f"{len(self.processors)} nodes, scheme {list(self.scheme)}, "
            f"primary {self.primary}, {self.requests} requests, "
            f"p(drop)={self.drop_probability}",
        ]
        lines += ["  " + event.describe() for event in self.events]
        return "\n".join(lines)


def _inside(index: int, windows: Sequence[Tuple[int, int]]) -> bool:
    return any(start <= index <= end for start, end in windows)


def generate_plan(
    protocol: str,
    processors: Sequence[int],
    scheme: Sequence[int],
    primary: int,
    requests: int,
    write_fraction: float,
    seed: int,
    crashes: Optional[int] = None,
    partitions: int = 1,
    drop_bursts: Optional[int] = None,
    drop_probability: float = 0.02,
    attempts: int = 4,
) -> ChaosPlan:
    """Derive a fault schedule from a seed under the safety constraints."""
    processors = tuple(sorted(int(p) for p in processors))
    scheme_t = tuple(sorted(int(p) for p in scheme))
    if requests < 20:
        raise ClusterError("a chaos run needs at least 20 requests")
    if primary not in scheme_t:
        raise ClusterError(f"primary {primary} is not in scheme {scheme_t}")
    t = len(scheme_t)
    core = tuple(p for p in scheme_t if p != primary)
    rng = random.Random(seed)
    if crashes is None:
        crashes = max(2, requests // 80)
    if drop_bursts is None:
        drop_bursts = max(2, requests // 60)

    events: List[FaultEvent] = []

    # Partition windows first (crash intervals must avoid them).  The
    # minority side is carved out of the non-scheme processors, so the
    # majority keeps the scheme and the primary.
    windows: List[Tuple[int, int]] = []
    outside = [p for p in processors if p not in scheme_t]
    if partitions > 0 and outside:
        span = requests // (2 * partitions + 1)
        for index in range(partitions):
            if span < 6:
                break
            start = (2 * index + 1) * span + rng.randrange(max(1, span // 3))
            end = min(start + max(4, span // 2), requests - 2)
            if start >= end:
                continue
            minority_size = rng.randint(1, max(1, len(outside) // 2))
            minority = tuple(sorted(rng.sample(outside, minority_size)))
            majority = tuple(
                sorted(p for p in processors if p not in minority)
            )
            windows.append((start, end))
            events.append(
                FaultEvent(at=start, kind="partition", groups=(majority, minority))
            )
            events.append(FaultEvent(at=end, kind="heal"))

    # Crash/recovery pairs outside the partition windows.  Track crash
    # intervals so concurrency stays under t and a core member survives.
    intervals: List[Tuple[int, int, int]] = []  # (start, end, node)

    def concurrent(start: int, end: int) -> List[int]:
        return [
            node
            for s, e, node in intervals
            if not (e < start or s > end)
        ]

    for _ in range(crashes):
        for _ in range(64):  # placement attempts for this crash
            start = rng.randint(2, max(2, requests - 12))
            length = rng.randint(4, 10)
            end = min(start + length, requests - 2)
            if _inside(start, windows) or _inside(end, windows):
                continue
            if any(_inside(i, windows) for i in range(start, end + 1)):
                continue
            overlapping = concurrent(start, end)
            if len(overlapping) >= t - 1:
                continue
            down = set(overlapping)
            # Keep at least one core member up (DA stays serviceable)
            # and never let the whole scheme be down at once.
            candidates = [
                node
                for node in processors
                if node not in down
                and bool(set(core) - down - {node})
                and bool(set(scheme_t) - down - {node})
            ]
            if not candidates:
                continue
            victim = rng.choice(candidates)
            intervals.append((start, end, victim))
            events.append(FaultEvent(at=start, kind="crash", node=victim))
            events.append(FaultEvent(at=end, kind="recover", node=victim))
            break

    # Deterministic drop bursts: small budgets on random links, always
    # retryable within the sender's attempt budget.
    for _ in range(drop_bursts):
        at = rng.randint(2, requests - 1)
        count = rng.randint(1, 3)
        budgets: Dict[Tuple[int, int], int] = {}
        for _ in range(count):
            sender, receiver = rng.sample(processors, 2)
            budgets[(sender, receiver)] = rng.randint(
                1, max(1, attempts - 1)
            )
        events.append(
            FaultEvent(
                at=at,
                kind="drops",
                budgets=tuple(
                    (s, r, n) for (s, r), n in sorted(budgets.items())
                ),
            )
        )

    events.sort(key=lambda event: (event.at, event.kind, event.node or 0))
    return ChaosPlan(
        seed=seed,
        protocol=protocol.strip().upper(),
        processors=processors,
        scheme=scheme_t,
        primary=primary,
        requests=requests,
        write_fraction=write_fraction,
        drop_probability=drop_probability,
        events=tuple(events),
    )
