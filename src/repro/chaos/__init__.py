"""Seeded chaos testing for the live cluster.

The harness generates a deterministic fault schedule from a seed
(crashes with recoveries, probabilistic drops, deterministic drop
bursts, one or more partitions), replays a seeded workload against a
resilient cluster while the schedule fires, runs a
:class:`~repro.cluster.resilience.SchemeRepairer` round after every
fault event, and checks invariants the paper's model implies:

* **read freshness** — a successful read returns the latest
  acknowledged version, or an issued-but-unacknowledged newer one;
* **no lost acknowledged writes** — the freshness rule applied to a
  final fault-free sweep over every node;
* **t-availability** — after each repair round at least ``t`` live
  reachable processors hold a valid copy;
* **join-list consistency** (DA) — every live non-core holder of a
  valid copy is recorded in some live core member's join-list, so a
  future write will invalidate it.

Everything is derived from the seed, so a failing run can be replayed
exactly (``repro chaos --seed N``); wall-clock timings differ between
runs, the schedule, workload and fault decisions do not.
"""

from repro.chaos.harness import ChaosConfig, ChaosResult, run_chaos
from repro.chaos.invariants import InvariantTracker, Violation
from repro.chaos.plan import ChaosPlan, FaultEvent, generate_plan

__all__ = [
    "ChaosConfig",
    "ChaosPlan",
    "ChaosResult",
    "FaultEvent",
    "InvariantTracker",
    "Violation",
    "generate_plan",
    "run_chaos",
]
