"""Seeded chaos testing for the live cluster.

The harness generates a deterministic fault schedule from a seed
(crashes with recoveries, probabilistic drops, deterministic drop
bursts, one or more partitions), replays a seeded workload against a
resilient cluster while the schedule fires, runs a
:class:`~repro.cluster.resilience.SchemeRepairer` round after every
fault event, and checks invariants the paper's model implies:

* **read freshness** — a successful read returns the latest
  acknowledged version, or an issued-but-unacknowledged newer one;
* **no lost acknowledged writes** — the freshness rule applied to a
  final fault-free sweep over every node;
* **t-availability** — after each repair round at least ``t`` live
  reachable processors hold a valid copy;
* **join-list consistency** (DA) — every live non-core holder of a
  valid copy is recorded in some live core member's join-list, so a
  future write will invalidate it;
* **no lost durable state** (``--durable``) — a ``log-fresh`` rejoin
  restores only versions the harness issued, never older than the
  latest acknowledged write, and a node's stored version never drops
  below its restored floor afterwards.

With ``--durable`` every node journals to a WAL (see
``docs/durability.md``) and the plan may additionally schedule
``torn``/``corrupt`` events that damage a crashed node's log before it
replays — exercising the CRC truncate-at-damage path.

Everything is derived from the seed, so a failing run can be replayed
exactly (``repro chaos --seed N``); wall-clock timings differ between
runs, the schedule, workload and fault decisions do not.  Plans
serialize with a ``schema_version`` (``--plan-only --plan-json``), so
a saved schedule replays across releases.
"""

from repro.chaos.harness import ChaosConfig, ChaosResult, run_chaos
from repro.chaos.invariants import InvariantTracker, Violation
from repro.chaos.plan import SCHEMA_VERSION, ChaosPlan, FaultEvent, generate_plan

__all__ = [
    "ChaosConfig",
    "ChaosPlan",
    "ChaosResult",
    "FaultEvent",
    "InvariantTracker",
    "SCHEMA_VERSION",
    "Violation",
    "generate_plan",
    "run_chaos",
]
