"""Reproduction of Huang & Wolfson (ICDE 1994):
*Object Allocation in Distributed Databases and Mobile Computers*.

The library has four layers:

* :mod:`repro.model` — the formal model of §3: requests, schedules,
  allocation schedules, and the stationary/mobile cost functions;
* :mod:`repro.core` — the DOM algorithms: SA, DA, the exact offline
  optimum, baselines, and the competitiveness harness;
* :mod:`repro.distsim` + :mod:`repro.storage` — a discrete-event
  message-passing substrate running SA/DA as real protocols, with
  failure injection and quorum fallback;
* :mod:`repro.workloads` + :mod:`repro.analysis` + :mod:`repro.viz` —
  schedule generators (including the adversarial lower-bound families),
  theoretical bounds, Figure 1/2 region maps, sweeps and reporting;
* :mod:`repro.engine` — the parallel experiment engine: deterministic
  per-task seeding, on-disk result caching, and process fan-out with
  bit-identical serial/parallel results.

Quickstart::

    from repro import (
        DynamicAllocation, StaticAllocation, Schedule, stationary, cost_of,
    )

    model = stationary(c_c=0.2, c_d=1.5)
    schedule = Schedule.parse("r1 r1 r2 w2 r2 r2 r2")
    sa = StaticAllocation({1, 2})
    da = DynamicAllocation({1, 2}, primary=2)
    print(cost_of(sa, schedule, model), cost_of(da, schedule, model))
"""

from repro.core import (
    BeamOptimal,
    CompetitivenessHarness,
    ConvergentAllocation,
    DynamicAllocation,
    HeterogeneousOfflineOptimal,
    NearestServerDynamic,
    NearestServerStatic,
    ObjectDirectory,
    ObjectRequest,
    OfflineOptimal,
    OnlineDOM,
    SkiRentalReplication,
    StaticAllocation,
    WriteInvalidationCaching,
    algorithm_factory,
    compare_algorithms,
    cost_of,
    interleave,
    make_algorithm,
    measure_ratios,
    optimal_allocation,
    optimal_cost,
    optimal_cost_lower_bound,
    optimal_sandwich,
)
from repro.engine import (
    ExperimentEngine,
    ResultCache,
    derive_seed,
    stable_key,
)
from repro.exceptions import (
    AvailabilityViolationError,
    ConfigurationError,
    IllegalScheduleError,
    ProtocolError,
    ReproError,
    SimulationError,
    StorageError,
)
from repro.model import (
    AllocationSchedule,
    CostBreakdown,
    CostModel,
    ExecutedRequest,
    HeterogeneousCostModel,
    PartialSchedule,
    Request,
    RequestKind,
    Schedule,
    mobile,
    read,
    stationary,
    write,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationSchedule",
    "AvailabilityViolationError",
    "BeamOptimal",
    "CompetitivenessHarness",
    "ConfigurationError",
    "ConvergentAllocation",
    "CostBreakdown",
    "CostModel",
    "DynamicAllocation",
    "ExecutedRequest",
    "ExperimentEngine",
    "HeterogeneousCostModel",
    "HeterogeneousOfflineOptimal",
    "IllegalScheduleError",
    "NearestServerDynamic",
    "NearestServerStatic",
    "ObjectDirectory",
    "ObjectRequest",
    "OfflineOptimal",
    "OnlineDOM",
    "PartialSchedule",
    "ProtocolError",
    "ReproError",
    "Request",
    "RequestKind",
    "ResultCache",
    "Schedule",
    "SimulationError",
    "SkiRentalReplication",
    "StaticAllocation",
    "StorageError",
    "WriteInvalidationCaching",
    "algorithm_factory",
    "compare_algorithms",
    "cost_of",
    "derive_seed",
    "interleave",
    "make_algorithm",
    "measure_ratios",
    "mobile",
    "optimal_allocation",
    "optimal_cost",
    "optimal_cost_lower_bound",
    "optimal_sandwich",
    "read",
    "stable_key",
    "stationary",
    "write",
    "__version__",
]
