"""Simulation statistics: message and I/O counters, priced on demand.

The whole point of the discrete-event substrate is that its counters
can be compared *unit for unit* with the analytic cost model:
``SimulationStats.breakdown()`` returns the same
:class:`~repro.model.accounting.CostBreakdown` type the model produces,
and the integration tests assert equality per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.accounting import CostBreakdown
from repro.model.cost_model import CostModel


@dataclass
class SimulationStats:
    """Mutable counters accumulated during a simulation run."""

    control_messages: int = 0
    data_messages: int = 0
    io_reads: int = 0
    io_writes: int = 0
    requests_completed: int = 0
    #: Completion (simulation-time) latency of each request, in order.
    latencies: list = field(default_factory=list)
    #: Messages dropped because the destination was crashed.
    dropped_messages: int = 0

    def breakdown(self) -> CostBreakdown:
        """The priceable counters as a model-layer cost breakdown."""
        return CostBreakdown(
            io_ops=self.io_reads + self.io_writes,
            control_messages=self.control_messages,
            data_messages=self.data_messages,
        )

    def cost(self, model: CostModel) -> float:
        """Total cost of the run under a cost model."""
        return model.price(self.breakdown())

    def snapshot(self) -> "SimulationStats":
        """An independent copy (for per-request deltas)."""
        return SimulationStats(
            self.control_messages,
            self.data_messages,
            self.io_reads,
            self.io_writes,
            self.requests_completed,
            list(self.latencies),
            self.dropped_messages,
        )

    def delta(self, earlier: "SimulationStats") -> CostBreakdown:
        """Breakdown of what happened since ``earlier``."""
        return CostBreakdown(
            io_ops=(self.io_reads + self.io_writes)
            - (earlier.io_reads + earlier.io_writes),
            control_messages=self.control_messages - earlier.control_messages,
            data_messages=self.data_messages - earlier.data_messages,
        )

    @property
    def mean_latency(self) -> Optional[float]:
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> Optional[float]:
        if not self.latencies:
            return None
        return max(self.latencies)
