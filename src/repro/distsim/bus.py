"""A shared-bus network with contention.

Paper §1.1: *"In an ethernet environment, a higher communication cost
implies a higher load on the network, which, in turn, implies a higher
probability of contention on the communication bus, and a higher
response time."*  The cost model abstracts this away; the simulator can
make it concrete.

:class:`SharedBusNetwork` specializes the point-to-point
:class:`~repro.distsim.network.Network`: all messages serialize over a
single bus.  The per-class latencies are reinterpreted as *transmission
times*; a message must wait until the bus is free, so its delivery time
is ``max(now, bus_free) + transmission``.  Queueing delays are recorded
so experiments can report how each algorithm's message volume turns
into response time — the paper's motivation for minimizing
communication, measured.

Charging is unchanged: contention affects *when* a message arrives, not
what it costs, so all model-agreement invariants keep holding on the
bus network too.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.distsim.messages import Message, MessageClass
from repro.distsim.network import Network
from repro.distsim.simulator import Simulator
from repro.exceptions import ProtocolError


class SharedBusNetwork(Network):
    """All traffic serializes over one bus (ethernet-style)."""

    def __init__(
        self,
        simulator: Simulator,
        control_latency: float = 1.0,
        data_latency: float = 3.0,
        io_latency: float = 2.0,
    ) -> None:
        super().__init__(simulator, control_latency, data_latency, io_latency)
        self._bus_free = 0.0
        #: Per-message queueing delays (time spent waiting for the bus).
        self.queue_delays: list[float] = []
        #: Total time the bus spent transmitting.
        self.busy_time = 0.0

    def send(
        self,
        message: Message,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> None:
        """Charge the message, then serialize it on the bus."""
        self.validate_endpoints(message)
        delay = self._occupy_bus(message.message_class)
        self.charge_and_schedule(message, delay, on_delivered)

    def _occupy_bus(self, message_class: MessageClass) -> float:
        """Reserve the bus for one transmission; return the delivery delay."""
        transmission = (
            self.data_latency
            if message_class is MessageClass.DATA
            else self.control_latency
        )
        now = self.simulator.now
        start = max(now, self._bus_free)
        self.queue_delays.append(start - now)
        self._bus_free = start + transmission
        self.busy_time += transmission
        return start - now + transmission

    def broadcast(
        self,
        messages,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """One bus transmission heard by every addressee.

        Paper §5.2: a bus *"supports broadcast at the same cost as a
        single-cast"* — the defining economy of snoopy-caching
        architectures.  ``messages`` is one message per receiver (all
        from the same sender, same class); the whole batch is **charged
        as a single message** and delivered simultaneously after one
        bus occupation.  ``on_complete`` fires once, after every
        delivery.
        """
        messages = list(messages)
        if not messages:
            if on_complete is not None:
                on_complete()
            return
        first = messages[0]
        for message in messages:
            self.validate_endpoints(message)
            if message.sender != first.sender:
                raise ProtocolError("a broadcast has a single sender")
            if message.message_class is not first.message_class:
                raise ProtocolError("a broadcast has a single message class")
        delay = self._occupy_bus(first.message_class)
        # Single charge for the whole broadcast.
        if first.message_class is MessageClass.DATA:
            self.stats.data_messages += 1
        else:
            self.stats.control_messages += 1

        def delivery() -> None:
            for message in messages:
                receiver = self.node(message.receiver)
                if not receiver.alive:
                    self.stats.dropped_messages += 1
                    if self.drop_listener is not None:
                        self.drop_listener.on_dropped(message)
                    continue
                receiver.deliver(message)
            if on_complete is not None:
                on_complete()

        self.simulator.schedule(delay, delivery, label="broadcast")

    # -- contention metrics -------------------------------------------------

    @property
    def mean_queue_delay(self) -> Optional[float]:
        if not self.queue_delays:
            return None
        return sum(self.queue_delays) / len(self.queue_delays)

    @property
    def max_queue_delay(self) -> Optional[float]:
        if not self.queue_delays:
            return None
        return max(self.queue_delays)

    def utilization(self) -> float:
        """Fraction of elapsed simulation time the bus was transmitting."""
        if self.simulator.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.simulator.now)
