"""Failure injection: fail-stop crashes and recoveries.

The paper analyzes SA and DA *"operating in the normal mode (namely, in
the absence of failures)"* and prescribes a quorum fallback when a
member of DA's core set ``F`` fails.  The injector realizes the
fail-stop model: a crash silences a node and wipes its volatile state;
a recovery brings it back with stale stable storage.  Protocols that
care (the fault-tolerant DA driver) receive ``on_crash``/``on_recover``
notifications — standing in for the failure detector the paper's cited
recovery literature assumes.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from repro.distsim.events import Event
from repro.distsim.network import Network
from repro.exceptions import SimulationError
from repro.types import ProcessorId


class FailureAware(Protocol):  # pragma: no cover - typing protocol
    """Optional hooks a protocol driver may implement."""

    def on_crash(self, node_id: ProcessorId) -> None: ...

    def on_recover(self, node_id: ProcessorId) -> None: ...


class FailureInjector:
    """Crash and recover nodes, immediately or at scheduled times."""

    def __init__(
        self,
        network: Network,
        protocol: Optional[object] = None,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.crash_count = 0
        self.recovery_count = 0
        #: Scheduled crash/recovery events not yet fired, so `shutdown`
        #: can cancel them instead of leaving armed timers behind in
        #: the simulator's queue.
        self._timers: List[Event] = []

    # -- immediate (between requests, the common test pattern) ----------------

    def crash_now(self, node_id: ProcessorId) -> None:
        node = self.network.node(node_id)
        if not node.alive:
            raise SimulationError(f"node {node_id} is already down")
        node.crash()
        self.crash_count += 1
        self._notify("on_crash", node_id)

    def recover_now(self, node_id: ProcessorId) -> None:
        node = self.network.node(node_id)
        if node.alive:
            raise SimulationError(f"node {node_id} is not down")
        node.recover()
        self.recovery_count += 1
        self._notify("on_recover", node_id)

    # -- scheduled (mid-request failures) ----------------------------------------

    def schedule_crash(self, node_id: ProcessorId, delay: float) -> Event:
        return self._schedule(
            delay, lambda: self.crash_now(node_id), f"crash@{node_id}"
        )

    def schedule_recovery(self, node_id: ProcessorId, delay: float) -> Event:
        return self._schedule(
            delay, lambda: self.recover_now(node_id), f"recover@{node_id}"
        )

    def _schedule(self, delay: float, action, label: str) -> Event:
        event: Event

        def fire() -> None:
            # Fired timers remove themselves so `shutdown` only cancels
            # what is genuinely still pending.
            if event in self._timers:
                self._timers.remove(event)
            action()

        event = self.network.simulator.schedule(delay, fire, label=label)
        self._timers.append(event)
        return event

    def shutdown(self) -> int:
        """Cancel every still-pending scheduled crash/recovery.

        Returns the number of timers cancelled.  Without this, an
        injector torn down mid-experiment leaves armed events in the
        simulator queue that fire into a dismantled cluster."""
        pending = [event for event in self._timers if not event.cancelled]
        for event in pending:
            event.cancel()
        self._timers.clear()
        return len(pending)

    def _notify(self, hook: str, node_id: ProcessorId) -> None:
        if self.protocol is not None and hasattr(self.protocol, hook):
            getattr(self.protocol, hook)(node_id)
