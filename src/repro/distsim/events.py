"""Discrete-event primitives: timestamped events with a stable order.

Events fire in (time, sequence) order — the sequence number breaks ties
deterministically so simulations are exactly reproducible regardless of
Python's hash randomization or scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        if time < 0:
            raise SimulationError(f"cannot schedule an event at time {time}")
        event = Event(time, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("pop from an empty event queue")

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def peek_time(self) -> float:
        """The firing time of the next live event."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise SimulationError("peek into an empty event queue")
        return self._heap[0].time
