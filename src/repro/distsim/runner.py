"""Convenience runners: execute schedules on the simulator and compare
the counted traffic against the analytic cost model.

The central validation of the reproduction's substrate: for SA and DA,
the discrete-event protocol's per-request (I/O, control, data) counts
must equal the model's per-request cost breakdown *exactly*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.base import OnlineDOM
from repro.distsim.network import Network
from repro.distsim.protocols.base import ProtocolDriver
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.sa_protocol import StaticAllocationProtocol
from repro.distsim.simulator import Simulator
from repro.distsim.statistics import SimulationStats
from repro.exceptions import ConfigurationError
from repro.model.accounting import CostBreakdown
from repro.model.schedule import Schedule
from repro.types import ProcessorId, processor_set


def build_network(
    processors: Iterable[ProcessorId],
    control_latency: float = 1.0,
    data_latency: float = 3.0,
    io_latency: float = 2.0,
) -> Network:
    """A fresh simulator + network hosting the given processors."""
    simulator = Simulator()
    network = Network(
        simulator,
        control_latency=control_latency,
        data_latency=data_latency,
        io_latency=io_latency,
    )
    network.add_nodes(processors)
    return network


def make_protocol(
    name: str,
    network: Network,
    scheme: Iterable[ProcessorId],
    primary: Optional[ProcessorId] = None,
) -> ProtocolDriver:
    """Build an SA or DA protocol driver by short name."""
    key = name.strip().upper()
    if key == "SA":
        return StaticAllocationProtocol(network, scheme)
    if key == "DA":
        return DynamicAllocationProtocol(network, scheme, primary=primary)
    raise ConfigurationError(f"unknown protocol {name!r}; known: SA, DA")


def run_protocol(
    name: str,
    schedule: Schedule,
    scheme: Iterable[ProcessorId],
    primary: Optional[ProcessorId] = None,
) -> SimulationStats:
    """One-shot: build everything, run the schedule, return the stats."""
    scheme = processor_set(scheme)
    network = build_network(set(schedule.processors) | scheme)
    protocol = make_protocol(name, network, scheme, primary)
    return protocol.execute(schedule)


@dataclass(frozen=True)
class RequestComparison:
    """Per-request simulated vs analytic breakdowns."""

    index: int
    simulated: CostBreakdown
    analytic: CostBreakdown

    @property
    def matches(self) -> bool:
        return self.simulated == self.analytic


def compare_with_model(
    protocol: ProtocolDriver,
    algorithm: OnlineDOM,
    schedule: Schedule,
) -> list[RequestComparison]:
    """Run the same schedule through the simulator and the model-level
    algorithm, returning the per-request breakdown comparison.

    ``protocol`` must be freshly built (no traffic yet) and configured
    identically to ``algorithm`` (same scheme, same primary).
    """
    allocation = algorithm.run(schedule)
    analytic = allocation.breakdowns()
    comparisons = []
    for index, request in enumerate(schedule):
        before = protocol.network.stats.snapshot()
        protocol.execute_request(request)
        delta = protocol.network.stats.delta(before)
        comparisons.append(RequestComparison(index, delta, analytic[index]))
    return comparisons


def mismatches(comparisons: list[RequestComparison]) -> list[RequestComparison]:
    """The comparisons that disagree (empty list = full agreement)."""
    return [comparison for comparison in comparisons if not comparison.matches]
