"""Message tracing: record every transmission for inspection.

A :class:`MessageLog` attaches to a network and records one entry per
sent message — timestamp, type, endpoints, pricing class.  Two uses:

* **debugging** — dump the exact conversation a protocol had;
* **golden tests** — the paper's worked examples have fully determined
  message sequences (our protocols are deterministic), so the expected
  trace can be written down and asserted verbatim
  (``tests/integration/test_golden_traces.py``).

Tracing is an observer: it never alters charging, delivery or timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.distsim.messages import Message, MessageClass
from repro.distsim.network import Network
from repro.types import ProcessorId


@dataclass(frozen=True)
class TraceEntry:
    """One recorded transmission."""

    time: float
    kind: str
    sender: ProcessorId
    receiver: ProcessorId
    message_class: MessageClass

    def compact(self) -> str:
        """Short form used by golden tests: ``Kind(src->dst)``."""
        return f"{self.kind}({self.sender}->{self.receiver})"

    def __str__(self) -> str:
        flavor = "data" if self.message_class is MessageClass.DATA else "ctrl"
        return (
            f"t={self.time:g} {self.kind} {self.sender}->{self.receiver} "
            f"[{flavor}]"
        )


class MessageLog:
    """Records every message a network sends.

    Wraps the network's ``send`` method; uninstall with
    :meth:`detach`.  Entries are recorded at *send* time (the moment
    the cost is charged), in deterministic order.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.entries: List[TraceEntry] = []
        self._original_send: Optional[Callable] = None
        self._attach()

    def _attach(self) -> None:
        if self._original_send is not None:
            return
        original = self.network.send

        def traced_send(message: Message, on_delivered=None):
            self.entries.append(
                TraceEntry(
                    self.network.simulator.now,
                    type(message).__name__,
                    message.sender,
                    message.receiver,
                    message.message_class,
                )
            )
            return original(message, on_delivered)

        self._original_send = original
        self.network.send = traced_send  # type: ignore[method-assign]

    def detach(self) -> None:
        """Stop tracing and restore the network's send method."""
        if self._original_send is not None:
            self.network.send = self._original_send  # type: ignore[method-assign]
            self._original_send = None

    # -- views -----------------------------------------------------------

    def compact(self) -> List[str]:
        """The short-form sequence, for golden comparisons."""
        return [entry.compact() for entry in self.entries]

    def of_kind(self, kind: str) -> List[TraceEntry]:
        return [entry for entry in self.entries if entry.kind == kind]

    def between(
        self, sender: ProcessorId, receiver: ProcessorId
    ) -> List[TraceEntry]:
        return [
            entry
            for entry in self.entries
            if entry.sender == sender and entry.receiver == receiver
        ]

    def clear(self) -> None:
        self.entries = []

    def dump(self) -> str:
        """Human-readable transcript."""
        return "\n".join(str(entry) for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)
