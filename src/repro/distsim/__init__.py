"""Discrete-event distributed-system substrate.

Runs SA, DA, quorum consensus and the fault-tolerant DA composition as
*real message-passing protocols* over a homogeneous point-to-point
network, counting control messages, data messages and I/O operations in
the same units the analytic model prices — so the simulator validates
the model and vice versa.
"""

from repro.distsim.bus import SharedBusNetwork
from repro.distsim.events import Event, EventQueue
from repro.distsim.failures import FailureInjector
from repro.distsim.messages import (
    Ack,
    DataTransfer,
    Invalidate,
    Message,
    MessageClass,
    ReadRequest,
    VersionInquiry,
    VersionReport,
)
from repro.distsim.network import Network
from repro.distsim.node import Node
from repro.distsim.protocols import (
    BaseStationDeployment,
    DynamicAllocationProtocol,
    FaultTolerantDAProtocol,
    ProtocolDriver,
    QuorumConsensusProtocol,
    SkiRentalProtocol,
    SnoopyCachingProtocol,
    StaticAllocationProtocol,
    WirelessBill,
)
from repro.distsim.runner import (
    RequestComparison,
    build_network,
    compare_with_model,
    make_protocol,
    mismatches,
    run_protocol,
)
from repro.distsim.simulator import Simulator
from repro.distsim.statistics import SimulationStats
from repro.distsim.tracing import MessageLog, TraceEntry

__all__ = [
    "Ack",
    "BaseStationDeployment",
    "DataTransfer",
    "DynamicAllocationProtocol",
    "Event",
    "EventQueue",
    "FailureInjector",
    "FaultTolerantDAProtocol",
    "Invalidate",
    "Message",
    "MessageClass",
    "MessageLog",
    "TraceEntry",
    "Network",
    "Node",
    "ProtocolDriver",
    "QuorumConsensusProtocol",
    "ReadRequest",
    "RequestComparison",
    "SharedBusNetwork",
    "Simulator",
    "SkiRentalProtocol",
    "SnoopyCachingProtocol",
    "SimulationStats",
    "StaticAllocationProtocol",
    "VersionInquiry",
    "VersionReport",
    "WirelessBill",
    "build_network",
    "compare_with_model",
    "make_protocol",
    "mismatches",
    "run_protocol",
]
