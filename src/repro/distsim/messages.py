"""Message types of the distributed protocols.

Paper §1.2 distinguishes two message classes:

* **control messages** — short: object id and operation only.  Read
  requests, invalidations, acknowledgements, quorum solicitations.
* **data messages** — carry the object content in addition to the
  control fields.

The class of a message determines its charge (``c_c`` vs ``c_d``); the
network layer counts messages by class so simulation totals can be
compared against the analytic cost model unit-for-unit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId


class MessageClass(enum.Enum):
    """Pricing class of a message."""

    CONTROL = "control"
    DATA = "data"


@dataclass(frozen=True, slots=True)
class Message:
    """Base class: every message knows its pricing class."""

    sender: ProcessorId
    receiver: ProcessorId

    #: Overridden by data-carrying subclasses.
    message_class = MessageClass.CONTROL

    def describe(self) -> str:
        return (
            f"{type(self).__name__}({self.sender} -> {self.receiver})"
        )


@dataclass(frozen=True, slots=True)
class ReadRequest(Message):
    """Control: 'send me the latest version' (paper §1.2's example)."""

    request_id: int = 0


@dataclass(frozen=True, slots=True)
class Invalidate(Message):
    """Control: 'your copy is obsolete' (sent along DA join-lists)."""

    version_number: int = -1
    request_id: int = 0


@dataclass(frozen=True, slots=True)
class Ack(Message):
    """Control: generic acknowledgement (quorum assembly)."""

    request_id: int = 0
    info: Any = None


@dataclass(frozen=True, slots=True)
class VersionInquiry(Message):
    """Control: 'what version number do you hold?' (quorum reads)."""

    request_id: int = 0


@dataclass(frozen=True, slots=True)
class VersionReport(Message):
    """Control: the reply to a :class:`VersionInquiry` — carries only a
    version *number* (a timestamp), not the object content."""

    request_id: int = 0
    version_number: int = -1
    holds_copy: bool = False


@dataclass(frozen=True, slots=True)
class DataTransfer(Message):
    """Data: carries a full object version between processors."""

    version: Optional[ObjectVersion] = None
    request_id: int = 0
    save_copy: bool = False

    message_class = MessageClass.DATA
