"""Message-passing realizations of the allocation algorithms."""

from repro.distsim.protocols.base import ProtocolDriver, RequestContext
from repro.distsim.protocols.base_station import (
    BaseStationDeployment,
    WirelessBill,
)
from repro.distsim.protocols.cddr_protocol import SkiRentalProtocol
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.missing_writes import FaultTolerantDAProtocol
from repro.distsim.protocols.quorum import (
    QuorumConsensusProtocol,
    QuorumMachinery,
    QuorumPoll,
)
from repro.distsim.protocols.sa_protocol import StaticAllocationProtocol
from repro.distsim.protocols.snoopy import SnoopyCachingProtocol

__all__ = [
    "BaseStationDeployment",
    "DynamicAllocationProtocol",
    "FaultTolerantDAProtocol",
    "ProtocolDriver",
    "QuorumConsensusProtocol",
    "QuorumMachinery",
    "QuorumPoll",
    "RequestContext",
    "SkiRentalProtocol",
    "SnoopyCachingProtocol",
    "StaticAllocationProtocol",
    "WirelessBill",
]
