"""Quorum consensus (weighted voting) — the paper's failure fallback.

Paper §2: *"We propose that the DA algorithm handles failures by
resorting to quorum consensus with static allocation when a processor
of the set F fails"*, citing Gifford's weighted voting and Thomas's
majority consensus.  The paper omits the details; this module
reconstructs the standard protocol:

* every processor holds one vote (the homogeneous special case of
  weighted voting);
* a **read** assembles ``read_quorum`` version reports (control
  messages; the reader's own copy reports for free), picks the holder
  of the highest version number, and fetches the object from it;
* a **write** stores the new version at ``write_quorum`` live
  processors (data messages + output I/O); stale copies are *not*
  invalidated — quorum intersection (``r + w > n``) guarantees every
  read sees the latest version anyway.

Version numbers play the role of Gifford's timestamps.  Reading a
version *number* is a catalog lookup, not a charged object I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.distsim.messages import (
    DataTransfer,
    ReadRequest,
    VersionInquiry,
    VersionReport,
)
from repro.distsim.network import Network
from repro.distsim.protocols.base import ProtocolDriver, RequestContext
from repro.exceptions import ProtocolError
from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId


@dataclass
class QuorumPoll:
    """Report collection for one read (vote-weighted)."""

    needed: int
    polled: set = field(default_factory=set)
    reports: Dict[ProcessorId, tuple[int, bool]] = field(default_factory=dict)
    votes_reported: int = 0
    decided: bool = False

    def record(
        self,
        reporter: ProcessorId,
        version_number: int,
        holds_copy: bool,
        votes: int = 1,
    ) -> None:
        if reporter not in self.reports:
            self.votes_reported += votes
        self.reports[reporter] = (version_number, holds_copy)

    def complete(self) -> bool:
        return self.votes_reported >= self.needed

    def has_holder(self) -> bool:
        return any(holds for _, holds in self.reports.values())

    def best_holder(self) -> ProcessorId:
        holders = {
            reporter: version_number
            for reporter, (version_number, holds) in self.reports.items()
            if holds
        }
        if not holders:
            raise ProtocolError("no quorum member holds a copy")
        best = max(holders.values())
        # Deterministic tie-break: the lowest id among the freshest.
        return min(p for p, v in holders.items() if v == best)


class QuorumMachinery:
    """Reusable quorum read/write state machines.

    Mixed into :class:`QuorumConsensusProtocol` and into the
    fault-tolerant DA driver (which enters quorum mode while a core
    member is down).  Classes using it must be
    :class:`~repro.distsim.protocols.base.ProtocolDriver` subclasses.
    """

    read_quorum: int
    write_quorum: int
    _polls: Dict[int, QuorumPoll]

    def _init_quorums(
        self,
        read_quorum: Optional[int],
        write_quorum: Optional[int],
        votes: Optional[Dict[ProcessorId, int]] = None,
    ) -> None:
        """Configure Gifford-style weighted voting.

        ``votes`` assigns each node a non-negative vote weight (default
        one vote each — Thomas's majority consensus as the special
        case).  Quorums are vote totals; ``r + w`` must exceed the total
        vote count so any read quorum intersects any write quorum.
        """
        self.votes: Dict[ProcessorId, int] = {
            node_id: 1 for node_id in self.network.node_ids
        }
        if votes:
            for node_id, weight in votes.items():
                if node_id not in self.votes:
                    raise ProtocolError(f"votes for unknown node {node_id}")
                if weight < 0:
                    raise ProtocolError(
                        f"vote weight of node {node_id} must be >= 0"
                    )
                self.votes[node_id] = weight
        total = sum(self.votes.values())
        if total < 1:
            raise ProtocolError("the total vote count must be positive")
        majority = total // 2 + 1
        self.read_quorum = read_quorum if read_quorum is not None else majority
        self.write_quorum = (
            write_quorum if write_quorum is not None else majority
        )
        if self.read_quorum + self.write_quorum <= total:
            raise ProtocolError(
                f"r={self.read_quorum} + w={self.write_quorum} must exceed "
                f"the total vote count {total} for quorum intersection"
            )
        if not 1 <= self.read_quorum <= total or not 1 <= self.write_quorum <= total:
            raise ProtocolError(
                f"quorum vote counts must be within [1, {total}]"
            )
        self._polls = {}

    def _vote(self, node_id: ProcessorId) -> int:
        return self.votes.get(node_id, 1)

    def _live_votes(self) -> int:
        return sum(
            self._vote(node.node_id) for node in self.network.live_nodes()
        )

    # -- reads -------------------------------------------------------------

    def quorum_read(self, context: RequestContext) -> None:
        reader = context.request.processor
        live = [node.node_id for node in self.network.live_nodes()]
        if self._live_votes() < self.read_quorum:
            raise ProtocolError(
                f"only {self._live_votes()} live votes; cannot assemble a "
                f"read quorum of {self.read_quorum}"
            )
        members = self._pick_quorum(live, reader, self.read_quorum)
        poll = QuorumPoll(needed=self.read_quorum)
        poll.polled = set(members)
        self._polls[context.request_id] = poll
        context.add_work()  # resolved when the object reaches the reader
        if reader in members:
            own = self.network.node(reader)
            version = own.database.peek_version()
            poll.record(
                reader,
                version.number if version else -1,
                version is not None,
                votes=self._vote(reader),
            )
        for member in members:
            if member == reader:
                continue
            self.network.send(
                VersionInquiry(reader, member, request_id=context.request_id)
            )
        self._maybe_decide_read(context)

    def _pick_quorum(
        self,
        live: list[ProcessorId],
        preferred: ProcessorId,
        votes_needed: int,
    ) -> list[ProcessorId]:
        """The preferred processor (if live) plus further nodes — heavy
        voters first, lowest id among equals — until the vote quota is
        met.  Deterministic, so runs are reproducible."""
        members: list[ProcessorId] = []
        gathered = 0
        if preferred in live and self._vote(preferred) > 0:
            members.append(preferred)
            gathered += self._vote(preferred)
        for node_id in sorted(live, key=lambda n: (-self._vote(n), n)):
            if gathered >= votes_needed:
                break
            if node_id not in members and self._vote(node_id) > 0:
                members.append(node_id)
                gathered += self._vote(node_id)
        return members

    def handle_version_inquiry(self, node, message: VersionInquiry) -> None:
        version = node.database.peek_version()
        self.network.send(
            VersionReport(
                node.node_id,
                message.sender,
                request_id=message.request_id,
                version_number=version.number if version else -1,
                holds_copy=version is not None,
            )
        )

    def handle_version_report(self, node, message: VersionReport) -> None:
        poll = self._polls.get(message.request_id)
        if poll is None or poll.decided:
            return  # late report after the quorum was assembled
        poll.record(
            message.sender,
            message.version_number,
            message.holds_copy,
            votes=self._vote(message.sender),
        )
        context = self.context(message.request_id)
        self._maybe_decide_read(context)

    def _maybe_decide_read(self, context: RequestContext) -> None:
        poll = self._polls[context.request_id]
        if poll.decided or not poll.complete():
            return
        reader = context.request.processor
        if not poll.has_holder():
            # The minimal quorum held no copy at all (possible right
            # after a fallback transition): widen the poll to the
            # remaining live nodes before giving up.
            remaining = [
                node.node_id
                for node in self.network.live_nodes()
                if node.node_id not in poll.polled and node.node_id != reader
            ]
            if not remaining:
                raise ProtocolError("no live node holds a copy of the object")
            poll.polled |= set(remaining)
            poll.needed += sum(self._vote(member) for member in remaining)
            for member in remaining:
                self.network.send(
                    VersionInquiry(reader, member, request_id=context.request_id)
                )
            return
        poll.decided = True
        holder = poll.best_holder()
        if holder == reader:
            version = self.network.node(reader).database.input_any_version()
            self.network.stats.io_reads += 1
            self.network.perform_io(
                lambda: self._finish_quorum_read(context, version),
                label=f"read-io@{reader}",
                node=reader,
            )
        else:
            self.network.send(
                ReadRequest(reader, holder, request_id=context.request_id)
            )

    def _finish_quorum_read(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        context.version = version
        context.finish_work(self.simulator.now)

    def quorum_serve_read(self, node, message: ReadRequest) -> None:
        version = node.database.input_any_version()
        self.network.stats.io_reads += 1

        def respond() -> None:
            self.network.send(
                DataTransfer(
                    node.node_id,
                    message.sender,
                    version=version,
                    request_id=message.request_id,
                    save_copy=False,
                )
            )

        self.network.perform_io(
            respond, label=f"serve-read@{node.node_id}", node=node.node_id
        )

    def quorum_read_response(self, node, message: DataTransfer) -> None:
        context = self.context(message.request_id)
        context.version = message.version
        context.finish_work(self.simulator.now)

    # -- writes --------------------------------------------------------------------

    def quorum_write(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        writer = context.request.processor
        live = [node.node_id for node in self.network.live_nodes()]
        if self._live_votes() < self.write_quorum:
            raise ProtocolError(
                f"only {self._live_votes()} live votes; cannot assemble a "
                f"write quorum of {self.write_quorum}"
            )
        members = self._pick_quorum(live, writer, self.write_quorum)
        if writer in members:
            self.local_write(context, writer, version)
        for member in members:
            if member == writer:
                continue
            context.add_work()
            self.network.send(
                DataTransfer(
                    writer,
                    member,
                    version=version,
                    request_id=context.request_id,
                    save_copy=True,
                )
            )
        self._last_write_members = frozenset(members)

    def quorum_store(self, node, message: DataTransfer) -> None:
        context = self.context(message.request_id)
        node.output_object(message.version)
        self.network.perform_io(
            lambda: context.finish_work(self.simulator.now),
            label=f"store@{node.node_id}",
            node=node.node_id,
        )


class QuorumConsensusProtocol(QuorumMachinery, ProtocolDriver):
    """Pure quorum consensus with static votes (the fallback mode)."""

    name = "quorum-protocol"

    def __init__(
        self,
        network: Network,
        scheme: Iterable[ProcessorId],
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
        votes: Optional[Dict[ProcessorId, int]] = None,
    ) -> None:
        ProtocolDriver.__init__(self, network, scheme)
        self._init_quorums(read_quorum, write_quorum, votes)
        self._last_write_members = frozenset(self.initial_scheme)

    def _seed_initial_copies(self) -> None:
        """Weighted voting starts with a copy at every voting site
        (Gifford '79); seeding is uncharged like all initialization."""
        version = self.versions.next_version(writer=min(self.initial_scheme))
        for node_id in self.network.node_ids:
            self.network.node(node_id).seed_copy(version)
        self._latest_version = version

    def start_read(self, context: RequestContext) -> None:
        self.quorum_read(context)

    def start_write(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        self.quorum_write(context, version)

    def handle_read_request(self, node, message: ReadRequest) -> None:
        self.quorum_serve_read(node, message)

    def handle_data_transfer(self, node, message: DataTransfer) -> None:
        if message.save_copy:
            self.quorum_store(node, message)
        else:
            self.quorum_read_response(node, message)
