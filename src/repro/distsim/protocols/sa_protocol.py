"""Static Allocation as a message-passing protocol.

The distributed realization of §4.2.1's SA algorithm:

* **Read by a member of Q** — one local input I/O.
* **Read by an outsider** — a ``ReadRequest`` control message to the
  designated server in ``Q``, which inputs the object (I/O) and ships
  it back in a ``DataTransfer`` data message.  The outsider does *not*
  save the copy.
* **Write by anyone** — the writer ships the new version to every
  member of ``Q`` (data messages; one fewer if the writer is itself in
  ``Q``, which instead performs a local output), and each member
  outputs it (I/O).  No invalidations are ever needed: the scheme is
  fixed.

Per-request message/I-O counts equal the analytic model's cost
breakdown exactly; ``tests/integration`` asserts this per request.
"""

from __future__ import annotations

from typing import Iterable

from repro.distsim.messages import DataTransfer, ReadRequest
from repro.distsim.network import Network
from repro.distsim.protocols.base import ProtocolDriver, RequestContext
from repro.exceptions import ProtocolError
from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId, ProcessorSet


def sa_store_targets(
    scheme: ProcessorSet, writer: ProcessorId
) -> list[ProcessorId]:
    """The replicas a SA write ships the new version to.

    Every member of the fixed scheme ``Q`` except the writer itself
    (which performs a local output instead).  Shared by the simulated
    driver and the live cluster adapter so both realizations apply the
    identical rule; sorted for deterministic sends.
    """
    return sorted(set(scheme) - {writer})


class StaticAllocationProtocol(ProtocolDriver):
    """Read-one-write-all over a fixed replica set ``Q``."""

    name = "SA-protocol"

    def __init__(
        self,
        network: Network,
        scheme: Iterable[ProcessorId],
    ) -> None:
        super().__init__(network, scheme)
        self.server: ProcessorId = min(self.initial_scheme)

    # -- reads ------------------------------------------------------------

    def start_read(self, context: RequestContext) -> None:
        reader = context.request.processor
        if reader in self.initial_scheme:
            self.local_read(context, reader)
            return
        context.add_work()
        self.network.send(
            ReadRequest(reader, self.server, request_id=context.request_id)
        )

    def handle_read_request(self, node, message: ReadRequest) -> None:
        version = node.input_object()

        def respond() -> None:
            self.network.send(
                DataTransfer(
                    node.node_id,
                    message.sender,
                    version=version,
                    request_id=message.request_id,
                    save_copy=False,
                )
            )

        self.network.perform_io(
            respond, label=f"serve-read@{node.node_id}", node=node.node_id
        )

    def handle_data_transfer(self, node, message: DataTransfer) -> None:
        context = self.context(message.request_id)
        if message.save_copy:
            # A replica receiving a write's new version.
            node.output_object(message.version)
            self.network.perform_io(
                lambda: context.finish_work(self.simulator.now),
                label=f"store@{node.node_id}",
                node=node.node_id,
            )
        else:
            # A read response: the object reached the reader's memory.
            context.version = message.version
            context.finish_work(self.simulator.now)

    # -- writes ------------------------------------------------------------------

    def start_write(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        writer = context.request.processor
        if writer in self.initial_scheme:
            self.local_write(context, writer, version)
        for member in sa_store_targets(self.initial_scheme, writer):
            context.add_work()
            self.network.send(
                DataTransfer(
                    writer,
                    member,
                    version=version,
                    request_id=context.request_id,
                    save_copy=True,
                )
            )
        if context.pending == 0:
            raise ProtocolError("a write must do some work")
