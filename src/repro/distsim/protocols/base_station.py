"""The mobile base-station deployment of DA (paper §2).

*"In mobile computing, assume that the mobile processors are connected
to a base station which has a processor and a local database.  Then a
natural choice for t is 2, with F (in DA) consisting of the
base-station processor.  Then each write from a mobile processor will
be performed locally, as well as propagated to the base-station.  The
base station will invalidate the copies at all the other mobile
processors."*

:class:`BaseStationDeployment` wires exactly this topology: one base
station (the singleton core ``F``), one distinguished mobile host
(DA's ``p``), and any number of additional mobile processors.  It also
reports the *wireless bill*: in the MC cost model every message to or
from a mobile processor is what the network provider charges for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.distsim.network import Network
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.simulator import Simulator
from repro.distsim.statistics import SimulationStats
from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel, mobile
from repro.model.schedule import Schedule
from repro.types import ProcessorId


@dataclass(frozen=True)
class WirelessBill:
    """What the network provider charges for one run (MC model)."""

    control_messages: int
    data_messages: int
    total_charge: float

    @property
    def total_messages(self) -> int:
        return self.control_messages + self.data_messages


class BaseStationDeployment:
    """A base station plus mobile hosts running the DA protocol."""

    def __init__(
        self,
        base_station: ProcessorId,
        mobile_hosts: Iterable[ProcessorId],
        control_latency: float = 1.0,
        data_latency: float = 3.0,
        io_latency: float = 0.0,
    ) -> None:
        hosts = tuple(sorted(set(mobile_hosts)))
        if base_station in hosts:
            raise ConfigurationError(
                f"the base station {base_station} cannot also be a mobile host"
            )
        if not hosts:
            raise ConfigurationError("need at least one mobile host")
        self.base_station = base_station
        self.mobile_hosts = hosts
        self.simulator = Simulator()
        self.network = Network(
            self.simulator,
            control_latency=control_latency,
            data_latency=data_latency,
            io_latency=io_latency,
        )
        self.network.add_nodes((base_station,) + hosts)
        # t = 2: F = {base station}, p = the first mobile host.
        self.protocol = DynamicAllocationProtocol(
            self.network,
            scheme={base_station, hosts[0]},
            primary=hosts[0],
        )

    @property
    def primary_host(self) -> ProcessorId:
        """DA's processor ``p`` — the initially-replicated mobile host."""
        return self.mobile_hosts[0]

    def run(self, schedule: Schedule) -> SimulationStats:
        """Execute a schedule of location reads/updates."""
        return self.protocol.execute(schedule)

    def bill(self, cost_model: CostModel = mobile(1.0, 1.0)) -> WirelessBill:
        """The provider's charge for the traffic so far (MC pricing)."""
        stats = self.network.stats
        return WirelessBill(
            control_messages=stats.control_messages,
            data_messages=stats.data_messages,
            total_charge=stats.cost(cost_model),
        )
