"""The ski-rental (CDDR-flavoured) baseline as a message protocol.

The message-level realization of
:class:`repro.core.cddr.SkiRentalReplication`: a foreign reader *rents*
(plain fetches) until its ``rent_limit``-th consecutive foreign read
since the last write, then *buys* (the server ships the copy marked
``save_copy=True`` and records the join).

The rental counters live in the serving core member's volatile state —
the server, not the reader, decides when a join pays off, which is the
natural place since the server sees every request.  A write clears the
counters along with the join-lists (both are invalidation-scoped
state).

Per-request traffic equals the model-level baseline's cost breakdown
exactly; ``tests/integration/test_cddr_protocol.py`` asserts it.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.distsim.messages import DataTransfer, ReadRequest
from repro.distsim.network import Network
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.base import RequestContext
from repro.exceptions import ProtocolError
from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId

_RENTALS = "rental_counters"


class SkiRentalProtocol(DynamicAllocationProtocol):
    """Rent-then-buy dynamic replication on the wire."""

    name = "CDDR-protocol"

    def __init__(
        self,
        network: Network,
        scheme: Iterable[ProcessorId],
        rent_limit: int = 2,
        primary: Optional[ProcessorId] = None,
    ) -> None:
        super().__init__(network, scheme, primary)
        if rent_limit < 1:
            raise ProtocolError("rent_limit must be at least 1")
        self.rent_limit = rent_limit
        self.network.node(self.server).volatile[_RENTALS] = {}

    def _rentals(self) -> dict:
        volatile = self.network.node(self.server).volatile
        return volatile.setdefault(_RENTALS, {})

    # -- reads: the server decides rent vs buy -----------------------------

    def handle_read_request(self, node, message: ReadRequest) -> None:
        version = node.input_object()
        rentals = node.volatile.setdefault(_RENTALS, {})
        count = rentals.get(message.sender, 0) + 1
        buying = count >= self.rent_limit
        if buying:
            rentals.pop(message.sender, None)
            if message.sender not in self.core:
                self._join_list(node.node_id).add(message.sender)
        else:
            rentals[message.sender] = count

        def respond() -> None:
            self.network.send(
                DataTransfer(
                    node.node_id,
                    message.sender,
                    version=version,
                    request_id=message.request_id,
                    save_copy=buying,
                )
            )

        self.network.perform_io(
            respond, label=f"serve-read@{node.node_id}", node=node.node_id
        )

    def handle_data_transfer(self, node, message: DataTransfer) -> None:
        context = self.context(message.request_id)
        if not message.save_copy and context.request.is_read:
            # A rented read: the object reaches memory, nothing stored.
            context.version = message.version
            context.finish_work(self.simulator.now)
            return
        super().handle_data_transfer(node, message)

    # -- writes also reset the rental counters -------------------------------

    def start_write(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        self._rentals().clear()
        super().start_write(context, version)
