"""Dynamic Allocation as a message-passing protocol.

The distributed realization of §4.2.2's DA algorithm, join-lists
included:

* **Read by a current copy holder** — one local input I/O.
* **Read by anyone else** — ``ReadRequest`` to the serving member of
  ``F``; the server inputs the object, ships it back marked
  ``save_copy=True``, and records the reader in its **join-list**.  The
  reader outputs the copy (the saving-read's extra I/O) and thereby
  joins the allocation scheme.
* **Write by ``j``** — execution set ``F ∪ {p}`` if ``j ∈ F ∪ {p}``,
  else ``F ∪ {j}``.  The writer outputs locally and ships the version
  to the other members; every member of ``F`` then walks its join-list
  and sends ``Invalidate`` control messages to each recorded holder
  that is neither in the new execution set nor the writer itself
  (paper: "Each processor of F sends 'invalidate' control-messages to
  the processors in its join-list, except for q").  Join-lists then
  restart from the new execution set's non-core members.

Join-lists live in the nodes' *volatile* state: a crash wipes them,
which is exactly why DA alone cannot survive the failure of an ``F``
member and the paper prescribes the quorum fallback
(:mod:`repro.distsim.protocols.missing_writes`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.distsim.messages import DataTransfer, Invalidate, ReadRequest
from repro.distsim.network import Network
from repro.distsim.protocols.base import ProtocolDriver, RequestContext
from repro.exceptions import ProtocolError
from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId, ProcessorSet

_JOIN_LIST = "join_list"


def da_execution_set(
    core: ProcessorSet, primary: ProcessorId, writer: ProcessorId
) -> ProcessorSet:
    """The execution set of a DA write (paper §4.2.2).

    ``F ∪ {p}`` when the writer belongs to ``F ∪ {p}``, otherwise
    ``F ∪ {j}``.  Shared by the simulated driver and the live cluster
    adapter (:mod:`repro.cluster.protocol`) so both realizations apply
    the identical rule.
    """
    if writer in core or writer == primary:
        return frozenset(core | {primary})
    return frozenset(core | {writer})


def da_invalidation_targets(
    join_list: Set[ProcessorId],
    execution_set: ProcessorSet,
    writer: ProcessorId,
) -> list[ProcessorId]:
    """Who a member of ``F`` must invalidate on a write.

    Paper: "Each processor of F sends 'invalidate' control-messages to
    the processors in its join-list, except for q" — and members of the
    new execution set keep (or just received) the fresh version, so
    they are never invalidated.  Sorted for deterministic sends.
    """
    return sorted(set(join_list) - set(execution_set) - {writer})


class DynamicAllocationProtocol(ProtocolDriver):
    """Save-on-read / invalidate-on-write with join-lists."""

    name = "DA-protocol"

    def __init__(
        self,
        network: Network,
        scheme: Iterable[ProcessorId],
        primary: Optional[ProcessorId] = None,
    ) -> None:
        super().__init__(network, scheme)
        if primary is None:
            primary = max(self.initial_scheme)
        if primary not in self.initial_scheme:
            raise ProtocolError(
                f"primary {primary} is not in the scheme "
                f"{sorted(self.initial_scheme)}"
            )
        self.primary = primary
        self.core: ProcessorSet = self.initial_scheme - {primary}
        if not self.core:
            raise ProtocolError("F must be non-empty (t >= 2)")
        self.server: ProcessorId = min(self.core)
        for member in self.core:
            self.network.node(member).volatile[_JOIN_LIST] = set()
        # The primary starts as a recorded non-core holder.
        self._join_list(self.server).add(self.primary)

    # -- join-list helpers -----------------------------------------------------

    def _join_list(self, member: ProcessorId) -> Set[ProcessorId]:
        volatile = self.network.node(member).volatile
        return volatile.setdefault(_JOIN_LIST, set())

    def recorded_holders(self) -> ProcessorSet:
        """Union of all join-lists: every non-core holder on record."""
        holders: set[ProcessorId] = set()
        for member in self.core:
            holders |= self._join_list(member)
        return frozenset(holders)

    def current_scheme(self) -> ProcessorSet:
        """The allocation scheme as the protocol state implies it."""
        return self.core | self.recorded_holders()

    # -- reads ---------------------------------------------------------------------

    def start_read(self, context: RequestContext) -> None:
        reader = context.request.processor
        if self.network.node(reader).holds_valid_copy:
            self.local_read(context, reader)
            return
        context.add_work()
        self.network.send(
            ReadRequest(reader, self.server, request_id=context.request_id)
        )

    def handle_read_request(self, node, message: ReadRequest) -> None:
        version = node.input_object()
        if message.sender not in self.core:
            # Core members never need join-list records: they are
            # permanent holders.  (They only send read requests during
            # post-crash recovery, handled by the fault-tolerant driver.)
            self._join_list(node.node_id).add(message.sender)

        def respond() -> None:
            self.network.send(
                DataTransfer(
                    node.node_id,
                    message.sender,
                    version=version,
                    request_id=message.request_id,
                    save_copy=True,
                )
            )

        self.network.perform_io(
            respond, label=f"serve-read@{node.node_id}", node=node.node_id
        )

    def handle_data_transfer(self, node, message: DataTransfer) -> None:
        context = self.context(message.request_id)
        node.output_object(message.version)
        if context.request.is_read:
            # Saving-read: the reader has the object in memory as soon
            # as it arrives; the save I/O still belongs to the request.
            context.version = message.version
        self.network.perform_io(
            lambda: context.finish_work(self.simulator.now),
            label=f"store@{node.node_id}",
            node=node.node_id,
        )

    def handle_invalidate(self, node, message: Invalidate) -> None:
        node.invalidate_copy()
        context = self.context(message.request_id)
        context.finish_work(self.simulator.now)

    # -- writes ----------------------------------------------------------------------

    def execution_set_for(self, writer: ProcessorId) -> ProcessorSet:
        return da_execution_set(self.core, self.primary, writer)

    def start_write(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        writer = context.request.processor
        execution_set = self.execution_set_for(writer)
        if writer not in execution_set:  # pragma: no cover - DA invariant
            raise ProtocolError("DA writes always include the writer")

        # 1. Invalidations along the join-lists, before the lists reset.
        for member in sorted(self.core):
            join_list = self._join_list(member)
            targets = da_invalidation_targets(join_list, execution_set, writer)
            for target in targets:
                context.add_work()
                self.network.send(
                    Invalidate(
                        member,
                        target,
                        version_number=version.number,
                        request_id=context.request_id,
                    )
                )
            join_list.clear()

        # 2. Store at the execution set.
        self.local_write(context, writer, version)
        for member in sorted(execution_set - {writer}):
            context.add_work()
            self.network.send(
                DataTransfer(
                    writer,
                    member,
                    version=version,
                    request_id=context.request_id,
                    save_copy=True,
                )
            )

        # 3. Restart the join-list record from the new holders.
        for holder in execution_set - self.core:
            self._join_list(self.server).add(holder)
