"""Protocol driver scaffolding.

A *driver* executes a schedule of read-write requests over the
discrete-event network, one request at a time (the paper's schedules
totally order writes against everything; running each request to
quiescence realizes that order exactly).

The driver doubles as the message handler of every node.  Each request
gets a :class:`RequestContext` tracking the outstanding asynchronous
completions (local I/O, remote stores, invalidation deliveries); the
request's latency is the simulation time at which the counter reaches
zero.  Completion tracking is an *experimenter's oracle*: it adds no
messages, so the counted traffic equals what the protocol itself needs
— and can be compared against the analytic cost model unit for unit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.distsim.messages import (
    Ack,
    DataTransfer,
    Invalidate,
    Message,
    ReadRequest,
    VersionInquiry,
    VersionReport,
)
from repro.distsim.network import Network
from repro.distsim.statistics import SimulationStats
from repro.exceptions import ProtocolError
from repro.model.request import Request
from repro.model.schedule import Schedule
from repro.storage.versions import ObjectVersion, VersionCounter
from repro.types import ProcessorId, ProcessorSet, processor_set


@dataclass
class RequestContext:
    """Bookkeeping for one in-flight request."""

    request_id: int
    request: Request
    start_time: float
    pending: int = 0
    done_time: Optional[float] = None
    #: For reads: the version the reader ended up with.
    version: Optional[ObjectVersion] = None

    def add_work(self, units: int = 1) -> None:
        if self.done_time is not None:
            raise ProtocolError(
                f"request {self.request_id} gained work after completing"
            )
        self.pending += units

    def finish_work(self, now: float, units: int = 1) -> None:
        self.pending -= units
        if self.pending < 0:
            raise ProtocolError(
                f"request {self.request_id} completed more work than started"
            )
        if self.pending == 0 and self.done_time is None:
            self.done_time = now


class ProtocolDriver(abc.ABC):
    """Base class for SA/DA/quorum drivers."""

    name: str = "abstract-protocol"

    def __init__(
        self,
        network: Network,
        initial_scheme: Iterable[ProcessorId],
    ) -> None:
        self.network = network
        self.simulator = network.simulator
        self.initial_scheme: ProcessorSet = processor_set(initial_scheme)
        if not self.initial_scheme:
            raise ProtocolError("the initial scheme is empty")
        missing = self.initial_scheme - set(network.node_ids)
        if missing:
            raise ProtocolError(f"scheme members without nodes: {sorted(missing)}")
        self.versions = VersionCounter(start=0)
        self._contexts: Dict[int, RequestContext] = {}
        self._next_request_id = 0
        for node_id in network.node_ids:
            network.node(node_id).attach_handler(self)
        network.drop_listener = self
        self._seed_initial_copies()
        network.reset_stats()

    # -- initialization -------------------------------------------------------

    def _seed_initial_copies(self) -> None:
        """Install version 0 at the initial scheme, uncharged."""
        version = self.versions.next_version(writer=min(self.initial_scheme))
        for node_id in sorted(self.initial_scheme):
            self.network.node(node_id).seed_copy(version)
        self._latest_version = version

    @property
    def latest_version(self) -> ObjectVersion:
        """The globally most recent version (the driver, as the
        experimenter's oracle, always knows it)."""
        return self._latest_version

    # -- request lifecycle -------------------------------------------------------

    def _new_context(self, request: Request) -> RequestContext:
        self._next_request_id += 1
        context = RequestContext(
            self._next_request_id, request, self.simulator.now
        )
        self._contexts[context.request_id] = context
        return context

    def context(self, request_id: int) -> RequestContext:
        if request_id not in self._contexts:
            raise ProtocolError(f"unknown request id {request_id}")
        return self._contexts[request_id]

    def execute(self, schedule: Schedule) -> SimulationStats:
        """Run the whole schedule to completion, one request at a time."""
        for request in schedule:
            self.execute_request(request)
        return self.network.stats

    def execute_request(self, request: Request) -> RequestContext:
        """Inject one request, run to quiescence, verify completion."""
        context = self._new_context(request)
        if request.is_read:
            self.start_read(context)
        else:
            new_version = self.versions.next_version(request.processor)
            self._latest_version = new_version
            self.start_write(context, new_version)
        self.simulator.run()
        if context.done_time is None:
            raise ProtocolError(
                f"request {context.request_id} ({request}) never completed"
            )
        if request.is_read:
            self._check_read_freshness(context)
        stats = self.network.stats
        stats.requests_completed += 1
        stats.latencies.append(context.done_time - context.start_time)
        return context

    def _check_read_freshness(self, context: RequestContext) -> None:
        """Every read must observe the latest version (paper §1.2: the
        concurrency-control mechanism orders requests so that each read
        accesses the most recent version)."""
        if context.version is None:
            raise ProtocolError(
                f"read {context.request_id} completed without a version"
            )
        if context.version.number != self._latest_version.number:
            raise ProtocolError(
                f"stale read: got v{context.version.number}, latest is "
                f"v{self._latest_version.number}"
            )

    # -- protocol specifics ---------------------------------------------------------

    @abc.abstractmethod
    def start_read(self, context: RequestContext) -> None:
        """Begin servicing a read request."""

    @abc.abstractmethod
    def start_write(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        """Begin servicing a write request creating ``version``."""

    # -- message dispatch --------------------------------------------------------------

    def on_message(self, node, message: Message) -> None:
        """Dispatch a delivered message to the matching handler."""
        if isinstance(message, ReadRequest):
            self.handle_read_request(node, message)
        elif isinstance(message, DataTransfer):
            self.handle_data_transfer(node, message)
        elif isinstance(message, Invalidate):
            self.handle_invalidate(node, message)
        elif isinstance(message, VersionInquiry):
            self.handle_version_inquiry(node, message)
        elif isinstance(message, VersionReport):
            self.handle_version_report(node, message)
        elif isinstance(message, Ack):
            self.handle_ack(node, message)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unhandled message {message.describe()}")

    def on_dropped(self, message: Message) -> None:
        """A message addressed to a crashed node was lost.

        A lost store or invalidation resolves its work unit (the dead
        node's copy is moot: its volatile validity is wiped by the
        crash, and the missing-writes log — if the driver keeps one —
        records the gap).  A lost *request* would hang the issuing
        read, so plain protocols fail fast; the fault-tolerant driver
        switches modes before this can happen.
        """
        request_id = getattr(message, "request_id", 0)
        context = self._contexts.get(request_id)
        if isinstance(message, (DataTransfer, Invalidate)):
            if context is not None and context.done_time is None:
                context.finish_work(self.simulator.now)
            return
        raise ProtocolError(
            f"{message.describe()} was dropped; {self.name} cannot make "
            "progress with this node down"
        )

    # Default handlers raise: a protocol only accepts what it sends.

    def handle_read_request(self, node, message: ReadRequest) -> None:
        raise ProtocolError(f"{self.name} got unexpected {message.describe()}")

    def handle_data_transfer(self, node, message: DataTransfer) -> None:
        raise ProtocolError(f"{self.name} got unexpected {message.describe()}")

    def handle_invalidate(self, node, message: Invalidate) -> None:
        raise ProtocolError(f"{self.name} got unexpected {message.describe()}")

    def handle_version_inquiry(self, node, message: VersionInquiry) -> None:
        raise ProtocolError(f"{self.name} got unexpected {message.describe()}")

    def handle_version_report(self, node, message: VersionReport) -> None:
        raise ProtocolError(f"{self.name} got unexpected {message.describe()}")

    def handle_ack(self, node, message: Ack) -> None:
        raise ProtocolError(f"{self.name} got unexpected {message.describe()}")

    # -- shared building blocks ------------------------------------------------------------

    def local_read(self, context: RequestContext, node_id: ProcessorId) -> None:
        """Charge a local input and complete that work unit after the
        I/O latency."""
        node = self.network.node(node_id)
        version = node.input_object()
        context.add_work()
        self.network.perform_io(
            lambda: self._finish_local_read(context, version),
            label=f"read-io@{node_id}",
            node=node_id,
        )

    def _finish_local_read(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        context.version = version
        context.finish_work(self.simulator.now)

    def local_write(
        self,
        context: RequestContext,
        node_id: ProcessorId,
        version: ObjectVersion,
    ) -> None:
        """Charge a local output and complete that work unit after the
        I/O latency."""
        node = self.network.node(node_id)
        node.output_object(version)
        context.add_work()
        self.network.perform_io(
            lambda: context.finish_work(self.simulator.now),
            label=f"write-io@{node_id}",
            node=node_id,
        )
