"""Fault-tolerant DA: quorum fallback via the missing-writes idea.

Paper §2: *"We propose that the DA algorithm handles failures by
resorting to quorum consensus with static allocation when a processor
of the set F fails.  The transition occurs using the missing writes
algorithm.  Details are omitted due to space limitations."*

This driver reconstructs those omitted details from the cited
literature (Eager & Sevcik '83 for missing writes; Gifford '79 /
Thomas '79 for quorums):

* **Normal mode** — plain DA (join-lists and all).
* **Crash of a scheme member** (a core processor, or the distinguished
  ``p`` while it holds a copy) — switch to majority quorum consensus.
  Every write performed while any node is down is appended to that
  node's *missing-writes log* (kept by the driver, standing in for the
  distributed log of Eager–Sevcik).
* **Recovery** — the recovered node runs a handshake against a live
  holder: if its log is empty the stable copy is revalidated at the
  price of a version check (one control round-trip); otherwise the
  latest version is shipped (read-request control + data message +
  output I/O).
* **Return to normal mode** once every core member is live again:
  core members that missed quorum writes are refreshed, stale non-core
  copies are invalidated, and the join-lists are rebuilt from the
  surviving holders of the latest version.  All transition traffic is
  charged through the network like any other message.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.distsim.messages import (
    DataTransfer,
    Invalidate,
    ReadRequest,
    VersionInquiry,
    VersionReport,
)
from repro.distsim.network import Network
from repro.distsim.protocols.base import RequestContext
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.quorum import QuorumMachinery
from repro.exceptions import ProtocolError
from repro.model.request import read
from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId


class FaultTolerantDAProtocol(QuorumMachinery, DynamicAllocationProtocol):
    """DA in the normal mode; quorum consensus while core members are down."""

    name = "DA-failover"

    def __init__(
        self,
        network: Network,
        scheme: Iterable[ProcessorId],
        primary: Optional[ProcessorId] = None,
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
        votes: Optional[Dict[ProcessorId, int]] = None,
    ) -> None:
        DynamicAllocationProtocol.__init__(self, network, scheme, primary)
        self._init_quorums(read_quorum, write_quorum, votes)
        self.mode = "da"
        self.mode_switches: List[str] = []
        #: node -> version numbers written while it was down.
        self.missing_writes: Dict[ProcessorId, List[int]] = {}
        #: recovery handshakes in flight: request_id -> recovering node.
        self._recovery_checks: Dict[int, ProcessorId] = {}

    # -- failure-detector hooks (called by the FailureInjector) ---------------

    def on_crash(self, node_id: ProcessorId) -> None:
        self._require_idle("crash handling")
        self.missing_writes[node_id] = []
        scheme_members = self.core | {self.primary}
        if node_id in scheme_members and self.mode == "da":
            self._switch_mode("quorum")
            self._establish_write_quorum()

    def on_recover(self, node_id: ProcessorId) -> None:
        self._require_idle("recovery")
        missed = self.missing_writes.pop(node_id, [])
        self._recovery_handshake(node_id, missed)
        self.simulator.run()
        if self.mode == "quorum" and self._all_scheme_members_alive():
            self._return_to_da()

    def _require_idle(self, what: str) -> None:
        if self.simulator.is_running:
            raise ProtocolError(
                f"{what} by the fault-tolerant driver must be injected "
                "between requests (use FailureInjector.crash_now / "
                "recover_now), not mid-request"
            )

    def _all_scheme_members_alive(self) -> bool:
        return all(
            self.network.node(member).alive
            for member in self.core | {self.primary}
        )

    def _switch_mode(self, mode: str) -> None:
        self.mode = mode
        self.mode_switches.append(mode)

    # -- request dispatch -----------------------------------------------------

    def start_read(self, context: RequestContext) -> None:
        if self.mode == "quorum":
            self.quorum_read(context)
        else:
            DynamicAllocationProtocol.start_read(self, context)

    def start_write(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        for log in self.missing_writes.values():
            log.append(version.number)
        if self.mode == "quorum":
            self.quorum_write(context, version)
        else:
            DynamicAllocationProtocol.start_write(self, context, version)

    # -- message dispatch: route by mode and in-flight recovery state ----------

    def handle_read_request(self, node, message: ReadRequest) -> None:
        if message.request_id in self._recovery_checks:
            # Serving a recovery fetch: ship the latest version.
            self.quorum_serve_read(node, message)
            return
        if self.mode == "quorum":
            self.quorum_serve_read(node, message)
        else:
            DynamicAllocationProtocol.handle_read_request(self, node, message)

    def handle_data_transfer(self, node, message: DataTransfer) -> None:
        recovering = self._recovery_checks.get(message.request_id)
        if recovering is not None:
            node.output_object(message.version)
            del self._recovery_checks[message.request_id]
            context = self.context(message.request_id)
            self.network.perform_io(
                lambda: context.finish_work(self.simulator.now),
                label=f"recovery-store@{node.node_id}",
                node=node.node_id,
            )
            return
        if self.mode == "quorum":
            if message.save_copy:
                self.quorum_store(node, message)
            else:
                self.quorum_read_response(node, message)
        else:
            DynamicAllocationProtocol.handle_data_transfer(self, node, message)

    def handle_version_inquiry(self, node, message: VersionInquiry) -> None:
        QuorumMachinery.handle_version_inquiry(self, node, message)

    def handle_version_report(self, node, message: VersionReport) -> None:
        recovering = self._recovery_checks.get(message.request_id)
        if recovering is not None:
            # The recovered node's copy was current after all.
            node.database.revalidate()
            del self._recovery_checks[message.request_id]
            context = self.context(message.request_id)
            context.finish_work(self.simulator.now)
            return
        QuorumMachinery.handle_version_report(self, node, message)

    def handle_invalidate(self, node, message: Invalidate) -> None:
        DynamicAllocationProtocol.handle_invalidate(self, node, message)

    # -- recovery -------------------------------------------------------------------

    def _live_latest_holder(
        self, excluding: ProcessorId
    ) -> Optional[ProcessorId]:
        latest = self.latest_version.number
        for node in self.network.live_nodes():
            if node.node_id == excluding:
                continue
            version = node.database.peek_version()
            if version is not None and version.number == latest:
                return node.node_id
        return None

    def _recovery_handshake(
        self, node_id: ProcessorId, missed: List[int]
    ) -> None:
        """Run the missing-writes handshake as a system-internal request.

        Only scheme members (core processors and ``p``) must hold the
        latest version; any other node recovers silently — its crash
        already marked the local copy invalid, so its next read will be
        an ordinary saving-read.
        """
        if node_id not in self.core | {self.primary}:
            return
        holder = self._live_latest_holder(excluding=node_id)
        if holder is None:
            raise ProtocolError(
                "no live holder of the latest version; the object is lost"
            )
        stored = self.network.node(node_id).database.peek_version()
        needs_fetch = (
            bool(missed)
            or stored is None
            or stored.number != self.latest_version.number
        )
        context = self._new_context(read(node_id))
        context.add_work()
        self._recovery_checks[context.request_id] = node_id
        if needs_fetch:
            # Fetch the latest version: control request, data reply, I/O.
            self.network.send(
                ReadRequest(node_id, holder, request_id=context.request_id)
            )
        else:
            # Version check only: control inquiry, control report.
            self.network.send(
                VersionInquiry(node_id, holder, request_id=context.request_id)
            )

    def _survey(self) -> tuple[set[ProcessorId], set[ProcessorId]]:
        """(live holders of the latest version, live stale-copy nodes)."""
        latest = self.latest_version.number
        holders: set[ProcessorId] = set()
        stale: set[ProcessorId] = set()
        for node in self.network.live_nodes():
            version = node.database.peek_version()
            if version is None:
                continue
            if version.number == latest:
                holders.add(node.node_id)
            else:
                stale.add(node.node_id)
        return holders, stale

    def _system_round(self) -> RequestContext:
        """A context for driver-internal (transition) traffic."""
        context = self._new_context(read(self.server))
        context.add_work()  # sentinel so intermediate zeros don't finish it
        return context

    def _close_system_round(self, context: RequestContext, what: str) -> None:
        context.finish_work(self.simulator.now)  # drop the sentinel
        self.simulator.run()
        if context.done_time is None:
            raise ProtocolError(f"the {what} round did not complete")

    def _establish_write_quorum(self) -> None:
        """Entering quorum mode: pre-fallback DA writes did not follow
        the quorum rule, so quorum intersection proves nothing about
        them.  Ship the latest version to a full write quorum first
        (the core of the missing-writes transition); afterwards every
        read quorum provably contains a latest copy."""
        holders, _ = self._survey()
        if not holders:
            raise ProtocolError(
                "no live holder of the latest version; the object is lost"
            )
        live_ids = [node.node_id for node in self.network.live_nodes()]
        if len(live_ids) < self.write_quorum:
            raise ProtocolError(
                f"only {len(live_ids)} live nodes; cannot establish a "
                f"write quorum of {self.write_quorum}"
            )
        source = min(holders)
        targets = []
        quorum_members = set(holders)
        for node_id in sorted(live_ids):
            if len(quorum_members) >= self.write_quorum:
                break
            if node_id not in quorum_members:
                targets.append(node_id)
                quorum_members.add(node_id)
        if not targets:
            return
        context = self._system_round()
        for target in targets:
            context.add_work()
            self.network.send(
                DataTransfer(
                    source,
                    target,
                    version=self.latest_version,
                    request_id=context.request_id,
                    save_copy=True,
                )
            )
        self._close_system_round(context, "write-quorum establishment")

    def _return_to_da(self) -> None:
        """Leave quorum mode: restore DA's invariants, charging the
        transition traffic."""
        holders, stale = self._survey()
        if not holders:
            raise ProtocolError(
                "no live holder of the latest version; the object is lost"
            )
        context = self._system_round()
        core_holders = holders & self.core
        source = min(core_holders) if core_holders else min(holders)
        # Refresh core members (and p) that missed quorum writes.
        for member in sorted((self.core | {self.primary}) - holders):
            context.add_work()
            self.network.send(
                DataTransfer(
                    source,
                    member,
                    version=self.latest_version,
                    request_id=context.request_id,
                    save_copy=True,
                )
            )
            holders.add(member)
        # Invalidate stale non-core copies so DA's "every valid copy is
        # the latest" invariant holds again.
        for node_id in sorted(stale - self.core - {self.primary}):
            context.add_work()
            self.network.send(
                Invalidate(
                    source,
                    node_id,
                    version_number=self.latest_version.number,
                    request_id=context.request_id,
                )
            )
        self._close_system_round(context, "DA restoration")
        # Rebuild join-lists from the surviving latest holders.
        for member in self.core:
            self._join_list(member).clear()
        for holder in holders - self.core:
            self._join_list(self.server).add(holder)
        self._switch_mode("da")
