"""Snoopy caching on a shared bus — §5.2's CDVM architecture, realized.

Paper §5.2's fourth difference between CDVM methods and replicated
databases: *"The architecture assumed in most CDVM methods is
bus-based.  This architecture supports broadcast at the same cost as a
single-cast ...  In contrast, in this paper we assumed point-to-point
communication."*

:class:`SnoopyCachingProtocol` runs write-invalidation caching on a
:class:`~repro.distsim.bus.SharedBusNetwork` with true broadcast:

* a **read miss** puts one request on the bus; every node snoops it and
  the (deterministically lowest-id) valid holder answers with the
  object; the reader caches the copy;
* a **write** puts one `Invalidate` broadcast on the bus — *one*
  control charge regardless of how many caches hold the line — then
  stores locally and at the ``t - 1`` lowest-id other nodes (the
  availability constraint CDVM itself lacks, §5.2's first difference).

Compared with DA on the same bus, the write-side economics flip: DA
pays one invalidation per recorded joiner, snoopy always pays one
broadcast.  The integration tests quantify exactly that.
"""

from __future__ import annotations

from typing import Iterable

from repro.distsim.bus import SharedBusNetwork
from repro.distsim.messages import DataTransfer, Invalidate, ReadRequest
from repro.distsim.protocols.base import ProtocolDriver, RequestContext
from repro.exceptions import ProtocolError
from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId


class SnoopyCachingProtocol(ProtocolDriver):
    """Write-invalidation caching with bus broadcast."""

    name = "snoopy-protocol"

    def __init__(
        self,
        network: SharedBusNetwork,
        scheme: Iterable[ProcessorId],
    ) -> None:
        if not isinstance(network, SharedBusNetwork):
            raise ProtocolError(
                "snoopy caching requires a SharedBusNetwork (the broadcast "
                "economics are the whole point, paper §5.2)"
            )
        super().__init__(network, scheme)
        self.threshold = len(self.initial_scheme)

    # -- ownership ----------------------------------------------------------

    def _owner(self) -> ProcessorId:
        """The lowest-id node holding a valid copy (the cache that
        answers a snooped read request)."""
        for node_id in self.network.node_ids:
            if self.network.node(node_id).holds_valid_copy:
                return node_id
        raise ProtocolError("no valid copy anywhere: the object is lost")

    def _holders(self) -> list[ProcessorId]:
        return [
            node_id
            for node_id in self.network.node_ids
            if self.network.node(node_id).holds_valid_copy
        ]

    # -- reads -----------------------------------------------------------------

    def start_read(self, context: RequestContext) -> None:
        reader = context.request.processor
        if self.network.node(reader).holds_valid_copy:
            self.local_read(context, reader)
            return
        context.add_work()
        # One bus transmission; every cache snoops, the owner answers.
        self.network.send(
            ReadRequest(reader, self._owner(), request_id=context.request_id)
        )

    def handle_read_request(self, node, message: ReadRequest) -> None:
        version = node.input_object()

        def respond() -> None:
            self.network.send(
                DataTransfer(
                    node.node_id,
                    message.sender,
                    version=version,
                    request_id=message.request_id,
                    save_copy=True,
                )
            )

        self.network.perform_io(
            respond, label=f"serve-read@{node.node_id}", node=node.node_id
        )

    def handle_data_transfer(self, node, message: DataTransfer) -> None:
        context = self.context(message.request_id)
        node.output_object(message.version)
        if context.request.is_read:
            context.version = message.version
        self.network.perform_io(
            lambda: context.finish_work(self.simulator.now),
            label=f"cache@{node.node_id}",
            node=node.node_id,
        )

    def handle_invalidate(self, node, message: Invalidate) -> None:
        node.invalidate_copy()

    # -- writes --------------------------------------------------------------------

    def start_write(
        self, context: RequestContext, version: ObjectVersion
    ) -> None:
        writer = context.request.processor
        bus: SharedBusNetwork = self.network  # type: ignore[assignment]
        # 1. One invalidation broadcast, snooped by every other cache.
        stale = [holder for holder in self._holders() if holder != writer]
        if stale:
            context.add_work()
            bus.broadcast(
                [
                    Invalidate(
                        writer,
                        holder,
                        version_number=version.number,
                        request_id=context.request_id,
                    )
                    for holder in stale
                ],
                on_complete=lambda: context.finish_work(self.simulator.now),
            )
        # 2. Store locally plus at t-1 partners for availability.
        self.local_write(context, writer, version)
        partners = [
            node_id
            for node_id in self.network.node_ids
            if node_id != writer
        ][: self.threshold - 1]
        for partner in partners:
            context.add_work()
            self.network.send(
                DataTransfer(
                    writer,
                    partner,
                    version=version,
                    request_id=context.request_id,
                    save_copy=True,
                )
            )
