"""The point-to-point network.

Paper §5.2: *"in this paper we assumed point-to-point communication"*
(no broadcast discount), and §3.2 assumes a homogeneous system: the
same control-message cost, data-message cost and I/O cost between and
at every pair of processors.  The network therefore charges per message
by class, independent of the endpoints, and delivers with a fixed
per-class latency.

Messages addressed to a crashed node are charged to the sender (the
transmission happened) but dropped at delivery time and counted in
``stats.dropped_messages`` — the signal protocols use (via the failure
injector's notifications in this reproduction) to trigger the quorum
fallback.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.distsim.messages import Message, MessageClass
from repro.distsim.node import Node
from repro.distsim.simulator import Simulator
from repro.distsim.statistics import SimulationStats
from repro.exceptions import ConfigurationError, ProtocolError
from repro.types import ProcessorId


class Network:
    """A homogeneous point-to-point message network."""

    def __init__(
        self,
        simulator: Simulator,
        control_latency: float = 1.0,
        data_latency: float = 3.0,
        io_latency: float = 2.0,
        serialize_io: bool = False,
    ) -> None:
        if min(control_latency, data_latency, io_latency) < 0:
            raise ConfigurationError("latencies must be non-negative")
        self.simulator = simulator
        self.control_latency = control_latency
        self.data_latency = data_latency
        self.io_latency = io_latency
        #: §1.1: "a higher I/O cost also negatively affects the response
        #: time".  When enabled, each node's disk serves one operation
        #: at a time, so concurrent I/Os at the same node queue.
        self.serialize_io = serialize_io
        self._disk_free: Dict[ProcessorId, float] = {}
        self.stats = SimulationStats()
        self._nodes: Dict[ProcessorId, Node] = {}
        #: Optional observer notified when a message is dropped because
        #: its destination is down: ``drop_listener.on_dropped(message)``.
        self.drop_listener = None

    # -- topology -----------------------------------------------------------

    def add_node(self, node_id: ProcessorId) -> Node:
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id} already exists")
        node = Node(node_id, self)
        self._nodes[node_id] = node
        return node

    def add_nodes(self, node_ids: Iterable[ProcessorId]) -> list[Node]:
        return [self.add_node(node_id) for node_id in sorted(set(node_ids))]

    def node(self, node_id: ProcessorId) -> Node:
        if node_id not in self._nodes:
            raise ConfigurationError(f"unknown node {node_id}")
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list[ProcessorId]:
        return sorted(self._nodes)

    def live_nodes(self) -> list[Node]:
        return [node for node_id, node in sorted(self._nodes.items()) if node.alive]

    # -- transmission ---------------------------------------------------------

    def send(
        self,
        message: Message,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> None:
        """Charge and schedule delivery of ``message``.

        ``on_delivered`` (if given) fires right after the receiver
        handles the message — an *uncharged* experimenter hook used by
        the drivers to track request completion without polluting the
        protocol with acknowledgement messages the model does not
        charge for.
        """
        self.validate_endpoints(message)
        latency = (
            self.data_latency
            if message.message_class is MessageClass.DATA
            else self.control_latency
        )
        self.charge_and_schedule(message, latency, on_delivered)

    def validate_endpoints(self, message: Message) -> None:
        """Reject malformed transmissions (shared with subclasses)."""
        if message.sender not in self._nodes:
            raise ProtocolError(f"unknown sender {message.sender}")
        if message.receiver not in self._nodes:
            raise ProtocolError(f"unknown receiver {message.receiver}")
        if message.sender == message.receiver:
            raise ProtocolError(
                f"{message.describe()}: a processor does not message itself "
                "(local work is I/O, not communication)"
            )

    def charge_and_schedule(
        self,
        message: Message,
        delay: float,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> None:
        """Count the message by class and deliver it after ``delay``."""
        if message.message_class is MessageClass.DATA:
            self.stats.data_messages += 1
        else:
            self.stats.control_messages += 1

        def delivery() -> None:
            receiver = self._nodes[message.receiver]
            if not receiver.alive:
                self.stats.dropped_messages += 1
                if self.drop_listener is not None:
                    self.drop_listener.on_dropped(message)
                return
            receiver.deliver(message)
            if on_delivered is not None:
                on_delivered()

        self.simulator.schedule(delay, delivery, label=message.describe())

    def perform_io(
        self,
        action: Callable[[], None],
        label: str = "io",
        node: Optional[ProcessorId] = None,
    ) -> None:
        """Schedule a charged I/O completion after the I/O latency.

        With ``serialize_io`` enabled and a ``node`` given, the node's
        disk serves one operation at a time: the completion waits for
        the disk to free up (queueing delay), modelling §1.1's I/O
        contribution to response time.  Counting is unaffected.
        """
        if self.serialize_io and node is not None:
            now = self.simulator.now
            start = max(now, self._disk_free.get(node, 0.0))
            self._disk_free[node] = start + self.io_latency
            delay = start - now + self.io_latency
        else:
            delay = self.io_latency
        self.simulator.schedule(delay, action, label=label)

    # -- bookkeeping ---------------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the counters (after uncharged initialization)."""
        self.stats = SimulationStats()
