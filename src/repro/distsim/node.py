"""A processor node: local database + volatile protocol state.

Crash semantics follow the classic fail-stop model the paper's cited
recovery literature assumes: a crashed node drops incoming messages and
loses its volatile state (join-lists, pending-request bookkeeping);
stable storage survives, but the copy it holds must be treated as
suspect until recovery revalidates it (it may have missed writes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.exceptions import ProtocolError
from repro.storage.local_db import LocalDatabase
from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distsim.messages import Message
    from repro.distsim.network import Network


class Node:
    """One processor of the distributed system."""

    def __init__(self, node_id: ProcessorId, network: "Network") -> None:
        self.node_id = node_id
        self.network = network
        self.database = LocalDatabase(node_id)
        self.alive = True
        #: Free-form volatile protocol state (lost on crash).
        self.volatile: Dict[str, Any] = {}
        self._handler = None

    # -- protocol wiring -------------------------------------------------------

    def attach_handler(self, handler) -> None:
        """Install the protocol's message handler:
        ``handler.on_message(node, message)`` is invoked per delivery."""
        self._handler = handler

    def deliver(self, message: "Message") -> None:
        """Called by the network when a message arrives."""
        if not self.alive:
            raise ProtocolError(
                f"network delivered a message to crashed node {self.node_id}"
            )
        if self._handler is None:
            raise ProtocolError(
                f"node {self.node_id} has no protocol handler attached"
            )
        self._handler.on_message(self, message)

    # -- charged I/O (counts into the network's statistics) ---------------------

    def input_object(self) -> ObjectVersion:
        """Read the object from the local database (charged I/O)."""
        version = self.database.input_object()
        self.network.stats.io_reads += 1
        return version

    def output_object(self, version: ObjectVersion) -> None:
        """Write the object to the local database (charged I/O)."""
        self.database.output_object(version)
        self.network.stats.io_writes += 1

    # -- uncharged state changes --------------------------------------------------

    def invalidate_copy(self) -> None:
        self.database.invalidate()

    def seed_copy(self, version: ObjectVersion) -> None:
        """Install an initial copy without charging I/O (pre-schedule
        setup; the paper's costs start at the first request)."""
        self.database.seed(version)

    @property
    def holds_valid_copy(self) -> bool:
        return self.database.holds_valid_copy

    # -- failures ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: volatile state lost, stable storage kept."""
        self.alive = False
        self.volatile = {}
        self.database.crash()

    def recover(self) -> None:
        """The node rejoins; its copy stays invalid until a protocol
        revalidates it (missing-writes handling)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.node_id} {state}>"
