"""The discrete-event simulation loop.

A thin deterministic engine: components schedule callbacks at future
times; :meth:`Simulator.run` drains the queue in timestamp order.  The
DOM protocols drive one request at a time — inject, run to quiescence,
inspect — mirroring the paper's totally-ordered schedules (§3.1: "any
pair of writes, or a read and a write, are totally ordered").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.distsim.events import Event, EventQueue
from repro.exceptions import SimulationError


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def is_running(self) -> bool:
        """True while :meth:`run` is draining the queue."""
        return self._running

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, action, label)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> float:
        """Drain the event queue (up to ``until``, if given).

        Returns the simulation time when the run stopped.  A
        ``max_events`` fuse guards against protocol bugs that generate
        message storms.
        """
        if self._running:
            raise SimulationError("the simulator is not re-entrant")
        self._running = True
        try:
            fired = 0
            while self._queue:
                next_time = self._queue.peek_time()
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                self._now = event.time
                event.action()
                self.events_fired += 1
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"more than {max_events} events fired; "
                        "suspected protocol message storm"
                    )
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def quiescent(self) -> bool:
        """True iff no events remain."""
        return not self._queue
