"""The per-processor local database of the paper's model.

A :class:`LocalDatabase` stores (at most) one version of the replicated
object on :class:`~repro.storage.stable_storage.StableStorage`.  A copy
can be *invalidated* — marked obsolete by a write elsewhere — without
being physically removed; reading an invalidated copy is a protocol
error, which is exactly the bug class the legality checks exist to
catch.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import StorageError
from repro.storage.stable_storage import StableStorage
from repro.storage.versions import ObjectVersion
from repro.types import ProcessorId

_OBJECT_KEY = "the-object"


class LocalDatabase:
    """One processor's local database holding one replicated object."""

    def __init__(self, owner: ProcessorId) -> None:
        self.owner = owner
        self.storage = StableStorage()
        self._valid = False

    # -- state inspection -------------------------------------------------

    @property
    def holds_valid_copy(self) -> bool:
        """True iff this database holds a non-invalidated copy."""
        return self._valid and self.storage.contains(_OBJECT_KEY)

    def peek_version(self) -> Optional[ObjectVersion]:
        """The stored version (valid or not) without charging an I/O."""
        if not self.storage.contains(_OBJECT_KEY):
            return None
        return self.storage.peek(_OBJECT_KEY)

    # -- the charged operations ----------------------------------------------

    def input_object(self) -> ObjectVersion:
        """Input (read) the object from the local database — one I/O.

        Raises :class:`StorageError` if there is no valid copy: a legal
        allocation schedule never reads an obsolete or absent copy.
        """
        if not self._valid:
            raise StorageError(
                f"processor {self.owner} has no valid copy to input"
            )
        return self.storage.read(_OBJECT_KEY)

    def input_any_version(self) -> ObjectVersion:
        """Input whatever version is on stable storage — one I/O.

        Quorum consensus determines freshness by comparing version
        timestamps across a quorum, not by DA's validity flag, so it
        may legitimately read a copy that DA-style bookkeeping marked
        suspect (e.g. after a crash).  Raises only when no copy exists.
        """
        return self.storage.read(_OBJECT_KEY)

    def output_object(self, version: ObjectVersion) -> None:
        """Output (write) the object to the local database — one I/O."""
        self.storage.write(_OBJECT_KEY, version)
        self._valid = True

    # -- uncharged bookkeeping -----------------------------------------------

    def seed(self, version: ObjectVersion) -> None:
        """Install a copy without charging an I/O.

        Used to set up the initial allocation scheme: the paper's cost
        accounting starts at the first request of the schedule.
        """
        self.storage.write(_OBJECT_KEY, version)
        self.storage.write_ops -= 1
        self._valid = True

    def invalidate(self) -> None:
        """Mark the local copy obsolete (costs only the control message
        that triggered it, which the network layer counts)."""
        self._valid = False

    def revalidate(self) -> None:
        """Mark the stored copy valid again.

        Used by recovery when the missing-writes handshake established
        that the stable copy is still the latest version; the handshake
        messages are charged by the caller."""
        if self.storage.contains(_OBJECT_KEY):
            self._valid = True

    def crash(self) -> None:
        """Volatile state is lost; stable storage survives, but the copy
        must be treated as suspect until recovery revalidates it."""
        self.storage = self.storage.survive_crash()
        self._valid = False

    @property
    def io_reads(self) -> int:
        return self.storage.read_ops

    @property
    def io_writes(self) -> int:
        return self.storage.write_ops

    @property
    def io_ops(self) -> int:
        return self.storage.io_ops
