"""Stable storage: the crash-surviving layer under a local database.

Paper §3.1: *"The local database at a processor is a set of objects
that are written on stable storage at the processor."*  The simulator
distinguishes stable storage (survives a processor crash) from the
processor's volatile state (join-lists, protocol bookkeeping — lost on
crash), which is what makes the failure-injection tests meaningful.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.exceptions import StorageError


class StableStorage:
    """A tiny key-value "disk" with operation counters.

    Every :meth:`read` and :meth:`write` counts one I/O operation —
    the unit the paper's cost model charges ``c_io`` for.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, Any] = {}
        self.read_ops = 0
        self.write_ops = 0

    def write(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key`` (one output I/O)."""
        self._blocks[key] = value
        self.write_ops += 1

    def read(self, key: str) -> Any:
        """Fetch the value under ``key`` (one input I/O)."""
        if key not in self._blocks:
            raise StorageError(f"no block {key!r} on stable storage")
        self.read_ops += 1
        return self._blocks[key]

    def delete(self, key: str) -> None:
        """Remove ``key``.  Deleting is bookkeeping, not a charged I/O:
        the paper's invalidations cost only their control message."""
        self._blocks.pop(key, None)

    def contains(self, key: str) -> bool:
        """Membership test (catalog lookup, not a charged I/O)."""
        return key in self._blocks

    def peek(self, key: str) -> Any:
        """Uncharged read for bookkeeping and assertions in tests.

        Simulation protocols must use :meth:`read` so the I/O is
        counted; ``peek`` exists so invariant checks do not perturb the
        counters they are checking.
        """
        if key not in self._blocks:
            raise StorageError(f"no block {key!r} on stable storage")
        return self._blocks[key]

    @property
    def io_ops(self) -> int:
        """Total charged I/O operations."""
        return self.read_ops + self.write_ops

    def survive_crash(self) -> "StableStorage":
        """Stable storage survives a crash unchanged — returns self.

        Exists to make crash-handling code self-documenting at the
        call site (``node.storage = node.storage.survive_crash()``).
        """
        return self
