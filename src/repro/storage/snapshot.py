"""Point-in-time snapshots that bound WAL replay length.

A snapshot is the folded durable state of a node at one log sequence
number, written as a single CRC-framed JSON document::

    [4-byte big-endian length][4-byte big-endian CRC32 of body][body]

— the same frame the WAL uses for records, so one validation discipline
covers both files.  Snapshots are written atomically (temp file +
``os.replace``), so a crash mid-snapshot leaves the previous snapshot
intact; a snapshot that fails its CRC or does not parse is treated as
absent and recovery falls back to pure log replay.

After a successful snapshot the WAL is reset: replay then costs one
snapshot load plus however many records accrued since, instead of the
whole history.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import StorageError

_HEADER = struct.Struct(">II")

#: Same plausibility bound as WAL records (see :mod:`repro.storage.wal`).
MAX_SNAPSHOT_BYTES = 4 * 1024 * 1024


class SnapshotStore:
    """Atomic save/load of one JSON state document with CRC validation."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def save(self, state: Mapping[str, Any], sync: bool = False) -> None:
        """Atomically replace the snapshot with ``state``."""
        body = json.dumps(
            dict(state), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        if len(body) > MAX_SNAPSHOT_BYTES:
            raise StorageError(
                f"snapshot of {len(body)} bytes exceeds the "
                f"{MAX_SNAPSHOT_BYTES}-byte limit"
            )
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(_HEADER.pack(len(body), zlib.crc32(body)))
            handle.write(body)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)

    def load(self) -> Optional[Dict[str, Any]]:
        """The saved state, or None if missing, torn, or corrupt.

        A bad snapshot never raises: recovery degrades to replaying
        the log from its start, which is always safe (just slower).
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except (FileNotFoundError, OSError):
            return None
        if len(data) < _HEADER.size:
            return None
        length, crc = _HEADER.unpack_from(data, 0)
        if length == 0 or length > MAX_SNAPSHOT_BYTES:
            return None
        body = data[_HEADER.size : _HEADER.size + length]
        if len(body) != length or zlib.crc32(body) != crc:
            return None
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(decoded, dict):
            return None
        return decoded

    def delete(self) -> None:
        """Remove the snapshot (and any orphaned temp file)."""
        for path in (self.path, self.path + ".tmp"):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
