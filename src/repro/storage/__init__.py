"""Versioned per-processor storage: the paper's "local database".

Also home to the durable-node machinery (PR 5): a CRC-checksummed
append-only :class:`~repro.storage.wal.WriteAheadLog` and an atomic
:class:`~repro.storage.snapshot.SnapshotStore`, which
:mod:`repro.cluster.durability` folds into crash recovery.
"""

from repro.storage.local_db import LocalDatabase
from repro.storage.snapshot import SnapshotStore
from repro.storage.stable_storage import StableStorage
from repro.storage.versions import ObjectVersion, VersionCounter
from repro.storage.wal import (
    ReplayResult,
    WalRecord,
    WriteAheadLog,
    inject_tail_corruption,
    inject_torn_tail,
)

__all__ = [
    "LocalDatabase",
    "ObjectVersion",
    "ReplayResult",
    "SnapshotStore",
    "StableStorage",
    "VersionCounter",
    "WalRecord",
    "WriteAheadLog",
    "inject_tail_corruption",
    "inject_torn_tail",
]
