"""Versioned per-processor storage: the paper's "local database"."""

from repro.storage.local_db import LocalDatabase
from repro.storage.stable_storage import StableStorage
from repro.storage.versions import ObjectVersion, VersionCounter

__all__ = [
    "LocalDatabase",
    "ObjectVersion",
    "StableStorage",
    "VersionCounter",
]
