"""Object versions.

Paper §3.1: *"Each write request in a schedule creates a new version of
the object.  Given a schedule, the latest version of the object at a
request q is the version created by the most recent write request that
precedes q."*  Versions are totally ordered by their sequence number —
the position of the creating write in the schedule — which doubles as
the timestamp quorum protocols compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.exceptions import ConfigurationError
from repro.types import ProcessorId


@dataclass(frozen=True, slots=True)
class ObjectVersion:
    """One immutable version of the replicated object."""

    number: int
    writer: ProcessorId
    payload: Any = None

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ConfigurationError(
                f"version numbers are non-negative, got {self.number}"
            )

    def newer_than(self, other: Optional["ObjectVersion"]) -> bool:
        """True iff this version supersedes ``other`` (or other is None)."""
        return other is None or self.number > other.number

    def __str__(self) -> str:
        return f"v{self.number}@{self.writer}"


class VersionCounter:
    """Monotonic version-number allocator (one per simulated object)."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ConfigurationError("version counters start at >= 0")
        self._next = start

    def next_version(self, writer: ProcessorId, payload: Any = None) -> ObjectVersion:
        version = ObjectVersion(self._next, writer, payload)
        self._next += 1
        return version

    @property
    def allocated(self) -> int:
        """How many versions have been allocated so far."""
        return self._next
