"""Write-ahead log: append-only, checksummed, replayable stable storage.

The paper's §3.1 model puts objects on *stable storage* that survives
processor crashes; the live cluster realizes that with a per-node
write-ahead log.  Every record is one length-prefixed frame::

    [4-byte big-endian length][4-byte big-endian CRC32 of body][body]

where the body is a sorted-key UTF-8 JSON object carrying a monotonic
sequence number, a typed ``kind`` and a small payload — the same
"decodable with ``struct`` + ``json`` alone" discipline as the cluster
wire format (:mod:`repro.cluster.rpc`).

Replay is deterministic and damage-tolerant: records are folded in
sequence order until the first sign of damage — a torn tail (fewer
bytes than the header promises), a CRC mismatch (a partially-fsynced
or scribbled record), an implausible length, or a sequence regression —
at which point the log is truncated to the end of the valid prefix and
the replay reports what was lost.  A crash can therefore cost at most
the *suffix* of un-synced records, never the whole log.

The module also hosts the fault injectors the chaos harness uses to
manufacture exactly those damage shapes (:func:`inject_torn_tail`,
:func:`inject_tail_corruption`), so the unit tests and the chaos runs
damage logs the same way.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import StorageError

#: ``(length, crc32)`` header in front of every record body.
_HEADER = struct.Struct(">II")

#: Records larger than this are rejected on append and treated as
#: damage on replay: WAL payloads are tiny typed state transitions, so
#: a huge length prefix means corruption, not a legitimate record.
MAX_RECORD_BYTES = 1 * 1024 * 1024


@dataclass(frozen=True)
class WalRecord:
    """One typed, sequenced state transition on the log."""

    seq: int
    kind: str
    payload: Dict[str, Any]

    def describe(self) -> str:
        return f"wal[{self.seq}] {self.kind} {self.payload}"


@dataclass(frozen=True)
class ReplayResult:
    """What one replay pass recovered — and what it had to give up."""

    records: Tuple[WalRecord, ...]
    #: Bytes cut off the tail because they failed validation.
    truncated_bytes: int = 0
    #: True when damage was detected (the log was truncated to the
    #: valid prefix; ``truncated_bytes`` says how much was lost).
    damaged: bool = False

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


class WriteAheadLog:
    """An append-only log of typed records with CRC-checked replay.

    ``sync=True`` fsyncs every append (durable against OS crashes);
    the default flushes only, which is durable against *process*
    crashes — the failure model of the cluster's fail-stop nodes — and
    keeps the fault-free request path fast.
    """

    def __init__(self, path: str, sync: bool = False) -> None:
        self.path = str(path)
        self.sync = bool(sync)
        self._file = None
        self._next_seq = 1

    # -- state inspection --------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The sequence number the next append will carry."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """The sequence number of the last appended/replayed record."""
        return self._next_seq - 1

    def size(self) -> int:
        """Current on-disk size in bytes (0 if the log does not exist)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # -- appending ---------------------------------------------------------

    def _handle(self):
        if self._file is None or self._file.closed:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._file = open(self.path, "ab")
        return self._file

    def append(
        self, kind: str, payload: Optional[Mapping[str, Any]] = None
    ) -> WalRecord:
        """Append one typed record; returns it with its sequence number."""
        record = WalRecord(
            seq=self._next_seq,
            kind=str(kind),
            payload=dict(payload or {}),
        )
        body = json.dumps(
            {"kind": record.kind, "payload": record.payload, "seq": record.seq},
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        if len(body) > MAX_RECORD_BYTES:
            raise StorageError(
                f"WAL record of {len(body)} bytes exceeds the "
                f"{MAX_RECORD_BYTES}-byte limit"
            )
        handle = self._handle()
        handle.write(_HEADER.pack(len(body), zlib.crc32(body)))
        handle.write(body)
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())
        self._next_seq += 1
        return record

    # -- replay ------------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Fold the log from disk; truncate at the first sign of damage.

        Valid records are returned in order.  The first torn frame, CRC
        mismatch, malformed body or sequence regression marks the
        damage point: everything from there on is cut off the file so
        later appends continue from a clean prefix.  The in-memory
        sequence counter resumes after the last valid record.
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return ReplayResult(records=())
        records = []
        offset = 0
        damaged = False
        while True:
            if offset + _HEADER.size > len(data):
                damaged = offset != len(data)  # a torn header
                break
            length, crc = _HEADER.unpack_from(data, offset)
            if length == 0 or length > MAX_RECORD_BYTES:
                damaged = True
                break
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                damaged = True  # a torn body
                break
            body = data[start:end]
            if zlib.crc32(body) != crc:
                damaged = True  # a partially-fsynced / scribbled record
                break
            record = self._decode(body)
            if record is None:
                damaged = True
                break
            if records and record.seq != records[-1].seq + 1:
                damaged = True  # sequence regression: records reordered
                break
            records.append(record)
            offset = end
        truncated = len(data) - offset
        if damaged and truncated > 0:
            self._truncate_to(offset)
        if records:
            self._next_seq = records[-1].seq + 1
        return ReplayResult(
            records=tuple(records),
            truncated_bytes=truncated if damaged else 0,
            damaged=damaged,
        )

    @staticmethod
    def _decode(body: bytes) -> Optional[WalRecord]:
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(decoded, dict):
            return None
        try:
            seq = int(decoded["seq"])
            kind = str(decoded["kind"])
        except (KeyError, TypeError, ValueError):
            return None
        payload = decoded.get("payload")
        if payload is None:
            payload = {}
        if not isinstance(payload, dict) or seq < 1:
            return None
        return WalRecord(seq=seq, kind=kind, payload=payload)

    # -- maintenance -------------------------------------------------------

    def resume_from(self, next_seq: int) -> None:
        """Continue numbering from ``next_seq`` (after a snapshot load)."""
        if next_seq < 1:
            raise StorageError("WAL sequence numbers start at 1")
        self._next_seq = int(next_seq)

    def reset(self) -> None:
        """Drop the log content (after its state moved to a snapshot).

        Sequence numbers keep counting: the snapshot records the last
        folded sequence number, so replay can verify the log continues
        where the snapshot left off.
        """
        self.close()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "wb"):
            pass

    def _truncate_to(self, size: int) -> None:
        self.close()
        try:
            os.truncate(self.path, size)
        except OSError as error:  # pragma: no cover - exotic filesystems
            raise StorageError(
                f"cannot truncate damaged WAL {self.path!r}: {error}"
            ) from error

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.close()
        self._file = None


# -- fault injection ---------------------------------------------------------


def inject_torn_tail(path: str, nbytes: int) -> int:
    """Tear the last ``nbytes`` off a log, as an interrupted write would.

    Returns how many bytes were actually removed (capped at the file
    size).  Used by the chaos harness and the WAL unit tests so both
    damage logs identically.
    """
    if nbytes < 1:
        raise StorageError("a torn write must remove at least one byte")
    try:
        size = os.path.getsize(path)
    except OSError as error:
        raise StorageError(f"no WAL at {path!r} to tear: {error}") from error
    cut = min(int(nbytes), size)
    if cut > 0:
        os.truncate(path, size - cut)
    return cut


def inject_tail_corruption(path: str, offset_from_end: int = 1) -> bool:
    """Flip one byte near the tail — a partial fsync leaving garbage.

    The record keeps its length but fails its CRC, which is the damage
    shape :meth:`WriteAheadLog.replay` must catch without shortening
    the file first.  Returns False when the file is too small to
    corrupt at that offset.
    """
    if offset_from_end < 1:
        raise StorageError("the corruption offset counts back from EOF, >= 1")
    try:
        size = os.path.getsize(path)
    except OSError as error:
        raise StorageError(f"no WAL at {path!r} to corrupt: {error}") from error
    if size < offset_from_end:
        return False
    with open(path, "r+b") as handle:
        handle.seek(size - offset_from_end)
        original = handle.read(1)
        handle.seek(size - offset_from_end)
        handle.write(bytes([original[0] ^ 0xFF]))
    return True
