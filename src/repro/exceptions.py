"""Exception hierarchy for the reproduction library.

All library-specific errors derive from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause while still
being able to distinguish model violations (illegal schedules, broken
availability constraints) from configuration mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters.

    Examples: a cost model with ``c_c > c_d`` (a data message cannot be
    cheaper than a control message, see Figure 1's "Cannot be true"
    region), an availability threshold ``t`` smaller than 2, or an
    initial allocation scheme smaller than ``t``.
    """


class IllegalScheduleError(ReproError):
    """An allocation schedule violates legality.

    Legality (paper §3.1): the execution set of every read request must
    have a non-empty intersection with the allocation scheme at the
    read request, i.e. every read must reach at least one *data
    processor* holding the latest version.
    """


class AvailabilityViolationError(ReproError):
    """The ``t``-available constraint was violated.

    Paper §3.1: an allocation schedule satisfies the ``t``-available
    constraint if the allocation scheme at every request has size at
    least ``t``.
    """


class ProtocolError(ReproError):
    """A distributed-simulation protocol reached an inconsistent state.

    Raised by :mod:`repro.distsim` when, e.g., a data message arrives at
    a processor that never requested it, or a quorum cannot be
    assembled from the live processors.
    """


class SimulationError(ReproError):
    """The discrete-event simulator detected an internal inconsistency."""


class ClusterError(ReproError):
    """A live-cluster operation failed.

    Raised by :mod:`repro.cluster` when, e.g., a wire frame is
    malformed, a request is routed to a crashed node, or a message is
    lost to injected transport faults in a way the protocol cannot
    absorb (a dropped read request, unlike a dropped store, leaves the
    reader without the object)."""


class ClusterDegradedError(ClusterError):
    """A live-cluster operation was rejected in degraded mode.

    Raised (only when a node runs with a resilience policy) when a
    write cannot reach enough live processors to uphold the paper's
    availability and consistency guarantees — e.g. a partition makes a
    stale copy un-invalidatable, or every store target is down.  The
    rejection is the graceful-degradation contract: the write fails
    *typed* instead of acknowledging an update that could later be read
    stale or lost."""


class StorageError(ReproError):
    """A local-database operation failed (e.g. reading an object that
    was never stored, or reading an invalidated copy)."""
