#!/usr/bin/env python3
"""Electronic publishing: a co-authored document read world-wide.

Paper §1.1's first motivating workload: *"in electronic publishing a
document (e.g. a newspaper, an article, a book) will be co-authored by
multiple users and read by many, in a distributed fashion."*

Two co-authors (processors 1 and 2) update the document; eight reader
sites fetch the latest revision.  We compare every algorithm in the
library across editorial phases — drafting (write-heavy), review
(balanced) and published (read-heavy) — in the stationary model, and
check the measured costs against the exact offline optimum.

Run:  python examples/electronic_publishing.py
"""

from repro import (
    ConvergentAllocation,
    DynamicAllocation,
    SkiRentalReplication,
    StaticAllocation,
    WriteInvalidationCaching,
    optimal_cost,
    stationary,
)
from repro.analysis import format_table
from repro.workloads import ReaderWriterWorkload

AUTHORS = [1, 2]
READERS = list(range(3, 11))
MODEL = stationary(c_c=0.2, c_d=1.5)  # a document is a large object
SCHEME = frozenset(AUTHORS)  # both authors always hold the latest draft

PHASES = [
    ("drafting", 0.6),   # mostly edits
    ("review", 0.3),     # comments in, revisions out
    ("published", 0.05), # the world reads, rare errata
]


def algorithms():
    return {
        "SA": lambda: StaticAllocation(SCHEME),
        "DA": lambda: DynamicAllocation(SCHEME, primary=2),
        "CDDR": lambda: SkiRentalReplication(SCHEME, rent_limit=2, primary=2),
        "CACHE": lambda: WriteInvalidationCaching(SCHEME),
        "CONV": lambda: ConvergentAllocation(SCHEME, MODEL, window=32),
    }


def main() -> None:
    rows = []
    for phase_name, write_fraction in PHASES:
        workload = ReaderWriterWorkload(
            READERS, AUTHORS, length=60, write_fraction=write_fraction
        )
        schedule = workload.generate(seed=2024)
        opt = optimal_cost(schedule, SCHEME, MODEL, max_processors=12)
        for name, factory in algorithms().items():
            algorithm = factory()
            cost = MODEL.schedule_cost(algorithm.run(schedule))
            rows.append((phase_name, name, cost, cost / opt))
    print(
        format_table(
            ["phase", "algorithm", "cost", "ratio vs OPT"],
            rows,
            title="Electronic publishing: 2 authors, 8 reader sites, "
            f"{MODEL}",
        )
    )

    # A publication-phase observation the paper's Figure 1 predicts:
    published = {
        name: ratio for phase, name, _, ratio in rows if phase == "published"
    }
    print(
        "\nPublished phase: DA's ratio "
        f"{published['DA']:.2f} vs SA's {published['SA']:.2f} — with "
        "c_d > 1, saving-reads at reader sites pay for themselves."
    )
    assert published["DA"] < published["SA"]


if __name__ == "__main__":
    main()
