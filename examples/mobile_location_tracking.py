#!/usr/bin/env python3
"""Mobile location tracking: the paper's mobile-computing scenario.

Paper §1.1: in future mobile networks *"an identification will be
associated with a user, rather than with a physical location ... The
location of the user will be updated as a result of the user's
mobility, and it will be read on behalf of the callers."*  And §2's
deployment: *"a natural choice for t is 2, with F consisting of the
base-station processor."*

This example runs a user's location record through the full
discrete-event simulator: a base station (the core F), mobile cells
that write location updates as the user moves, and callers that read.
It reports the wireless bill under the mobile-computing pricing — the
out-of-pocket cost the MC model is about — and contrasts DA's bill with
SA's, which Proposition 3 proves unboundedly worse.

Run:  python examples/mobile_location_tracking.py
"""

from repro import DynamicAllocation, StaticAllocation, mobile
from repro.analysis import format_table
from repro.distsim import BaseStationDeployment
from repro.workloads import MobileLocationWorkload

BASE_STATION = 0
CELLS = [1, 2, 3, 4]
CALLERS = [2, 3, 4]  # cell processors also place calls
PRICING = mobile(c_c=0.1, c_d=0.5)  # per-message wireless tariff


def main() -> None:
    workload = MobileLocationWorkload(
        cells=CELLS,
        callers=CALLERS,
        length=300,
        move_probability=0.15,
    )
    schedule = workload.generate(seed=7)
    print(
        f"workload: {len(schedule)} requests, "
        f"{schedule.write_count} location updates (moves), "
        f"{schedule.read_count} caller lookups"
    )

    # --- the full event-driven deployment (DA with F = {station}) -----
    deployment = BaseStationDeployment(BASE_STATION, mobile_hosts=CELLS)
    stats = deployment.run(schedule)
    bill = deployment.bill(PRICING)
    print(
        format_table(
            ["metric", "value"],
            [
                ("control messages", bill.control_messages),
                ("data messages", bill.data_messages),
                ("wireless bill", bill.total_charge),
                ("mean request latency", stats.mean_latency),
            ],
            title="\nDA base-station deployment (simulated)",
        )
    )

    # --- model-level comparison: DA vs SA bills ------------------------
    scheme = frozenset({BASE_STATION, CELLS[0]})
    da = DynamicAllocation(scheme, primary=CELLS[0])
    sa = StaticAllocation(scheme)
    da_bill = PRICING.schedule_cost(da.run(schedule))
    sa_bill = PRICING.schedule_cost(sa.run(schedule))
    print(
        format_table(
            ["algorithm", "wireless bill"],
            [("DA (invalidate on move)", da_bill),
             ("SA (fetch every lookup)", sa_bill)],
            title="\nModel-level bills (same tariff)",
        )
    )
    savings = 100.0 * (1 - da_bill / sa_bill)
    print(
        f"\nDA cuts the wireless bill by {savings:.0f}% — callers'"
        " repeat lookups hit their saved copy until the user moves."
    )
    assert da_bill < sa_bill
    # The simulator's DA bill equals the model's (same units counted).
    assert abs(bill.total_charge - da_bill) < 1e-6


if __name__ == "__main__":
    main()
