#!/usr/bin/env python3
"""Financial instruments: prices read and updated world-wide.

Paper §1.1: *"Financial-instruments' prices will be read and updated
from all over the world."*  A price record is the hardest case for
dynamic allocation: updates are frequent (every trade), readers are
scattered, and a saved copy can go stale within milliseconds.

This example uses the library's *average-case* machinery to decide the
allocation policy analytically — the exact Markov-chain expected costs
of repro.analysis.expected_cost — then confirms the decision by
simulation and places the instrument on Figure 1's map.  Two
instruments illustrate the two regimes:

* a liquid future: updated constantly (write fraction 0.6) — static
  allocation territory;
* an indicative index recomputed rarely but watched everywhere (write
  fraction 0.02) — dynamic allocation territory.

Run:  python examples/financial_ticker.py
"""

from repro import DynamicAllocation, StaticAllocation, stationary
from repro.analysis import (
    analytic_crossover_write_fraction,
    da_expected_cost,
    format_table,
    sa_expected_cost,
)
from repro.workloads import UniformWorkload

N_SITES = 8  # trading sites world-wide
SCHEME = frozenset({1, 2})
MODEL = stationary(c_c=0.1, c_d=0.6)  # a price tick is a small object

INSTRUMENTS = [
    ("liquid future", 0.6),
    ("balanced ETF", 0.2),
    ("indicative index", 0.02),
]


def simulate(write_fraction: float, seeds=range(3)) -> dict:
    costs = {"SA": 0.0, "DA": 0.0}
    total = 0
    for seed in seeds:
        schedule = UniformWorkload(
            range(1, N_SITES + 1), 600, write_fraction
        ).generate(seed)
        total += len(schedule)
        costs["SA"] += MODEL.schedule_cost(
            StaticAllocation(SCHEME).run(schedule)
        )
        costs["DA"] += MODEL.schedule_cost(
            DynamicAllocation(SCHEME, primary=2).run(schedule)
        )
    return {name: value / total for name, value in costs.items()}


def main() -> None:
    crossover = analytic_crossover_write_fraction(MODEL, N_SITES)
    print(
        f"analytic SA/DA crossover for this tariff: write fraction "
        f"{crossover:.3f}\n"
    )

    rows = []
    for name, write_fraction in INSTRUMENTS:
        analytic_sa = sa_expected_cost(MODEL, N_SITES, 2, write_fraction)
        analytic_da = da_expected_cost(MODEL, N_SITES, 2, write_fraction)
        simulated = simulate(write_fraction)
        decision = "DA" if analytic_da < analytic_sa else "SA"
        rows.append(
            (
                name,
                write_fraction,
                analytic_sa,
                analytic_da,
                simulated["SA"],
                simulated["DA"],
                decision,
            )
        )
    print(
        format_table(
            ["instrument", "w", "SA E[cost]", "DA E[cost]",
             "SA simulated", "DA simulated", "policy"],
            rows,
            title="Per-request expected cost, analytic vs simulated "
            f"({MODEL})",
        )
    )

    for name, w, sa_a, da_a, sa_s, da_s, decision in rows:
        simulated_winner = "DA" if da_s < sa_s else "SA"
        assert decision == simulated_winner, name
    print(
        "\nthe analytic policy choice matches simulation for every "
        "instrument — pick the algorithm per instrument, not per system."
    )


if __name__ == "__main__":
    main()
