#!/usr/bin/env python3
"""Explore the paper's open problem: DA's competitive-factor gap.

Paper §6.1: the gap between DA's 1.5 lower bound and its (2 + 2 c_c)
upper bound "is the subject of future research".  This script is the
research tool: for a few price points it

1. enumerates EVERY schedule up to a given length over a small
   universe and certifies DA's worst cost-ratio (exhaustive search
   with an incrementally carried offline-optimal DP),
2. prints the worst schedule found — the adversarial *seed*,
3. sustains the seed into an arbitrarily long family (repeat it with
   fresh one-shot readers) and reports the family's limiting ratio,

showing the measured factor tracking 2 + Θ(c_c), far above 1.5.

Run:  python examples/gap_explorer.py [c_c c_d]
"""

import sys

from repro import DynamicAllocation, stationary
from repro.analysis import (
    certified_worst_case,
    da_competitive_factor,
    format_table,
)
from repro.core.competitive import CompetitivenessHarness
from repro.workloads import da_killer

SCHEME = frozenset({1, 2})


def sustained_family_ratio(model, readers=4, rounds=8) -> float:
    """The long-run ratio of the m-readers-per-round family."""
    harness = CompetitivenessHarness(model)
    schedule = da_killer(list(range(5, 5 + readers)), writer=1, rounds=rounds)
    report = harness.measure(
        lambda: DynamicAllocation(SCHEME, primary=2), [schedule]
    )
    return report.max_ratio


def explore(price_points) -> None:
    rows = []
    for c_c, c_d in price_points:
        model = stationary(c_c, c_d)
        worst = certified_worst_case(
            lambda: DynamicAllocation(SCHEME, primary=2),
            model,
            SCHEME,
            (5, 6),
            max_length=5,
        )
        sustained = sustained_family_ratio(model)
        rows.append(
            (
                c_c,
                c_d,
                worst.ratio,
                str(worst.schedule),
                sustained,
                da_competitive_factor(model),
            )
        )
    print(
        format_table(
            ["c_c", "c_d", "certified worst (len<=5)", "worst schedule",
             "sustained family", "Thm 2/3 bound"],
            rows,
            title="DA's factor, bracketed from below and above",
        )
    )
    print(
        "\nreading the table: both brackets sit well above the paper's 1.5\n"
        "lower bound at every price point.  The short-schedule worst case\n"
        "tracks the saving-read seed (2 + c_c + c_d)/(1 + c_c + c_d), which\n"
        "approaches 2 as prices shrink; the sustained family holds ~1.6+\n"
        "and grows with more one-shot readers per round (see the gap\n"
        "benchmark).  Evidence that Theorem 2's side of the gap is the\n"
        "tight one: the true factor looks like 2 + Θ(c_c), not 1.5."
    )


def main() -> None:
    if len(sys.argv) == 3:
        points = [(float(sys.argv[1]), float(sys.argv[2]))]
    else:
        points = [(0.0, 0.25), (0.1, 0.5), (0.25, 0.75)]
    explore(points)


if __name__ == "__main__":
    main()
