#!/usr/bin/env python3
"""Quickstart: allocate one replicated object, compare SA, DA and OPT.

Walks through the paper's core loop in ~40 lines of API:

1. write a schedule in the paper's own notation,
2. pick a cost model (stationary or mobile),
3. run the static (SA) and dynamic (DA) allocation algorithms,
4. compare against the exact offline optimum,
5. check the proven competitive bounds.

Run:  python examples/quickstart.py
"""

from repro import (
    DynamicAllocation,
    Schedule,
    StaticAllocation,
    cost_of,
    optimal_allocation,
    optimal_cost,
    stationary,
)
from repro.analysis import da_competitive_factor, sa_competitive_factor

# --- 1. a schedule: reads and writes, each issued by a processor --------
# Processor 5 reads the object repeatedly; processor 1 updates it twice.
schedule = Schedule.parse("r5 r5 w1 r5 r5 r5 w1 r5")
print(f"schedule: {schedule}")

# --- 2. the stationary cost model (c_io normalized to 1) ----------------
model = stationary(c_c=0.2, c_d=1.5)  # inside DA's superiority region
print(f"cost model: {model}")

# --- 3. run the two online algorithms -----------------------------------
scheme = {1, 2}  # t = 2 copies at all times (availability constraint)
sa = StaticAllocation(scheme)
da = DynamicAllocation(scheme, primary=2)

sa_cost = cost_of(sa, schedule, model)
da_cost = cost_of(da, schedule, model)
print(f"\nSA (read-one-write-all) cost: {sa_cost:.2f}")
print(f"DA (save-on-read)        cost: {da_cost:.2f}")

# The allocation schedule DA produced — saving-reads are underlined
# (prefixed with _) exactly as in the paper:
print(f"DA allocation schedule: {da.allocation_schedule()}")

# --- 4. the offline optimum (dynamic programming) ------------------------
opt = optimal_cost(schedule, scheme, model)
witness = optimal_allocation(schedule, scheme, model)
print(f"\nOPT cost: {opt:.2f}")
print(f"OPT allocation schedule: {witness}")

# --- 5. the paper's bounds, checked --------------------------------------
sa_bound = sa_competitive_factor(model)
da_bound = da_competitive_factor(model)
print(f"\nSA ratio {sa_cost / opt:.3f}  <=  Theorem 1 bound {sa_bound:.3f}")
print(f"DA ratio {da_cost / opt:.3f}  <=  Theorem 2/3 bound {da_bound:.3f}")
assert sa_cost <= sa_bound * opt + 1e-9
assert da_cost <= da_bound * opt + 1e-9

if da_cost < sa_cost:
    print("\nc_d > 1: dynamic allocation wins, as Figure 1 predicts.")
