#!/usr/bin/env python3
"""Failure handling: DA's quorum fallback and the missing-writes return.

Paper §2: *"We propose that the DA algorithm handles failures by
resorting to quorum consensus with static allocation when a processor
of the set F fails.  The transition occurs using the missing writes
algorithm."*  (The details are omitted there; this library reconstructs
them — see repro/distsim/protocols/missing_writes.py.)

The script runs a five-node system through a core-member outage:

  normal DA  ->  crash of F's member  ->  quorum mode  ->  recovery
  (missing-writes catch-up)  ->  normal DA again

printing the mode transitions, the missing-writes log and the traffic
each phase cost.

Run:  python examples/failure_recovery.py
"""

from repro import stationary
from repro.analysis import format_table
from repro.distsim import FailureInjector, FaultTolerantDAProtocol, build_network
from repro.model import Schedule

MODEL = stationary(c_c=0.2, c_d=1.5)
NODES = {1, 2, 3, 4, 5}
SCHEME = frozenset({1, 2})  # F = {1}, p = 2


def phase_cost(network, before):
    delta = network.stats.delta(before)
    return (
        delta.control_messages,
        delta.data_messages,
        delta.io_ops,
        MODEL.price(delta),
    )


def main() -> None:
    network = build_network(NODES)
    protocol = FaultTolerantDAProtocol(network, SCHEME, primary=2)
    injector = FailureInjector(network, protocol)
    rows = []

    # --- phase 1: normal operation ------------------------------------
    before = network.stats.snapshot()
    for request in Schedule.parse("r3 w1 r4 r3"):
        protocol.execute_request(request)
    rows.append(("normal DA", protocol.mode, *phase_cost(network, before)))

    # --- phase 2: the core member crashes -------------------------------
    before = network.stats.snapshot()
    injector.crash_now(1)
    rows.append(
        ("crash of F member", protocol.mode, *phase_cost(network, before))
    )
    print(f"mode after crash: {protocol.mode} (switches: {protocol.mode_switches})")

    # --- phase 3: service continues under quorum consensus ---------------
    before = network.stats.snapshot()
    for request in Schedule.parse("w4 r3 r5 w2"):
        protocol.execute_request(request)
    rows.append(("quorum service", protocol.mode, *phase_cost(network, before)))
    print(f"missing-writes log for node 1: {protocol.missing_writes[1]}")

    # --- phase 4: recovery and the return to DA ---------------------------
    before = network.stats.snapshot()
    injector.recover_now(1)
    rows.append(
        ("recovery + return to DA", protocol.mode, *phase_cost(network, before))
    )

    # --- phase 5: normal operation resumes ---------------------------------
    before = network.stats.snapshot()
    for request in Schedule.parse("r5 w1 r3"):
        protocol.execute_request(request)
    rows.append(("normal DA again", protocol.mode, *phase_cost(network, before)))

    print(
        format_table(
            ["phase", "mode after", "ctrl", "data", "io", "SC cost"],
            rows,
            title="\nOutage timeline",
        )
    )

    node1 = network.node(1)
    print(
        f"\nnode 1 after recovery: valid={node1.holds_valid_copy}, "
        f"version={node1.database.peek_version()}, "
        f"latest={protocol.latest_version}"
    )
    assert protocol.mode == "da"
    assert node1.database.peek_version().number == protocol.latest_version.number
    print("all requests serviced; no stale read ever returned.")


if __name__ == "__main__":
    main()
