#!/usr/bin/env python3
"""Hospital imaging: many objects, one directory.

Paper §1.1: *"An image, e.g. an X-ray, will be annotated by multiple
hospitals and read by many."*  A radiology network manages one
replicated record per patient study — dozens of independent objects,
each with its own access pattern.  The paper analyzes a single object;
its cost function is additive across objects, so per-object DOM
instances compose — which is exactly what
:class:`repro.core.multi.ObjectDirectory` packages.

Three hospitals (1–3) annotate studies (writes); six clinics (4–9)
review them (reads).  Hot studies are reviewed everywhere; cold ones
barely at all.  The directory runs DA per study; we compare the fleet
cost against running SA per study and against the per-study exact
optimum.

Run:  python examples/hospital_imaging.py
"""

import random

from repro import DynamicAllocation, StaticAllocation, optimal_cost, stationary
from repro.analysis import format_table
from repro.core.multi import ObjectDirectory, interleave
from repro.model.request import read, write

HOSPITALS = [1, 2, 3]
CLINICS = list(range(4, 10))
MODEL = stationary(c_c=0.2, c_d=1.5)  # X-rays are big objects
SCHEME = frozenset({1, 2})  # two archive hospitals always keep a copy

STUDIES = {
    "study-hot": 60,    # a teaching case everyone opens
    "study-warm": 24,
    "study-cold": 6,    # routine follow-up
}


def build_streams(seed: int = 5):
    rng = random.Random(seed)
    streams = {}
    for study, request_count in STUDIES.items():
        requests = []
        for _ in range(request_count):
            if rng.random() < 0.15:  # annotation
                requests.append(write(rng.choice(HOSPITALS)))
            else:  # review
                requests.append(read(rng.choice(CLINICS)))
        streams[study] = requests
    return streams


def main() -> None:
    streams = build_streams()
    stream = interleave(streams)
    print(f"{len(stream)} requests across {len(streams)} studies")

    da_directory = ObjectDirectory(
        lambda study: DynamicAllocation(SCHEME, primary=2)
    )
    da_directory.run(stream)
    sa_directory = ObjectDirectory(lambda study: StaticAllocation(SCHEME))
    sa_directory.run(stream)

    rows = []
    for study, requests in sorted(streams.items()):
        from repro.model.schedule import Schedule

        schedule = Schedule(tuple(requests))
        opt = optimal_cost(schedule, SCHEME, MODEL)
        rows.append(
            (
                study,
                len(requests),
                sa_directory.cost(MODEL, study),
                da_directory.cost(MODEL, study),
                opt,
            )
        )
    rows.append(
        (
            "TOTAL",
            len(stream),
            sa_directory.cost(MODEL),
            da_directory.cost(MODEL),
            sum(row[4] for row in rows),
        )
    )
    print(
        format_table(
            ["study", "requests", "SA cost", "DA cost", "OPT"],
            rows,
            title=f"\nPer-study allocation costs ({MODEL})",
        )
    )

    hot_scheme = da_directory.scheme("study-hot")
    print(
        f"\nhot study's current allocation scheme: {sorted(hot_scheme)} — "
        "the clinics reviewing it joined via saving-reads."
    )
    assert da_directory.cost(MODEL) < sa_directory.cost(MODEL)
    print("DA's directory-wide bill beats SA's, as c_d > 1 predicts.")


if __name__ == "__main__":
    main()
