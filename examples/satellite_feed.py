#!/usr/bin/env python3
"""Satellite image feed: the append-only model of paper §6.2.

*"Consider a set S of processors, and a sequence of objects generated
by these processors ... the objects are images transmitted, one per
minute, by a satellite ... For reliability, each object must be stored
at t or more processors."*

Earth stations 1 and 3 downlink images; stations 2, 4 and 5 analyze the
latest image on demand.  SA keeps t permanent standing orders; DA keeps
t-1 permanent orders plus temporary standing orders that are cancelled
when the next image arrives.

Run:  python examples/satellite_feed.py
"""

import random

from repro import DynamicAllocation, StaticAllocation, stationary
from repro.analysis import format_table
from repro.core.versioning import (
    AppendOnlyFeed,
    generate,
    read_latest,
    run_feed,
    standing_order_stations,
)

DOWNLINK_STATIONS = [1, 3]
ANALYST_STATIONS = [2, 4, 5]
MODEL = stationary(c_c=0.2, c_d=1.5)  # images are big: c_d > 1
SCHEME = frozenset({1, 2})  # t = 2: image must survive a station loss


def build_feed(images: int, lookups_per_image: int, seed: int = 0):
    rng = random.Random(seed)
    events = []
    for _ in range(images):
        events.append(generate(rng.choice(DOWNLINK_STATIONS)))
        for _ in range(lookups_per_image):
            events.append(read_latest(rng.choice(ANALYST_STATIONS)))
    return AppendOnlyFeed(events)


def main() -> None:
    feed = build_feed(images=8, lookups_per_image=4, seed=11)
    print(
        f"feed: {feed.object_count} images over stations "
        f"{sorted(feed.stations)}, "
        f"{len(feed.events) - feed.object_count} analyst lookups"
    )

    sa_result = run_feed(feed, StaticAllocation(SCHEME), MODEL)
    da_result = run_feed(feed, DynamicAllocation(SCHEME, primary=2), MODEL)

    print(
        format_table(
            ["policy", "cost", "reliable (>= t copies/image)"],
            [
                ("SA: 2 permanent standing orders", sa_result.cost,
                 sa_result.reliability_satisfied(2)),
                ("DA: 1 permanent + temporary orders", da_result.cost,
                 da_result.reliability_satisfied(2)),
            ],
            title="\nStanding-order policies",
        )
    )

    # Show a temporary standing order being cancelled by the next image.
    holders = standing_order_stations(da_result.allocation)
    schedule = da_result.allocation.schedule()
    for index, request in enumerate(schedule):
        if request.is_write and index > 0:
            before = sorted(holders[index - 1])
            after = sorted(holders[index])
            print(
                f"\nimage #{request.processor}'s arrival: stations with the "
                f"latest image {before} -> {after}"
            )
            print(
                "temporary standing orders "
                f"{sorted(set(before) - set(after))} were invalidated."
            )
            break

    assert da_result.cost < sa_result.cost
    assert da_result.reliability_satisfied(2)
    print(
        f"\nDA's temporary orders save "
        f"{sa_result.cost - da_result.cost:.1f} cost units on this feed."
    )


if __name__ == "__main__":
    main()
