#!/usr/bin/env bash
# Reproduce everything: tests, property checks, every paper experiment.
#
# Usage:  scripts/reproduce.sh [output-dir]
#
# Writes test_output.txt and bench_output.txt into the repository root
# (or the given directory) and regenerates every artifact under
# benchmarks/results/.

set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-.}"

echo "== installing (editable) =="
pip install -e . --no-build-isolation --quiet

echo "== test suite =="
python -m pytest tests/ 2>&1 | tee "$OUT/test_output.txt"

echo "== benchmark harness (regenerates every figure & theorem) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee "$OUT/bench_output.txt"

echo "== examples =="
for example in examples/*.py; do
    echo "--- $example"
    python "$example" > /dev/null
done

echo
echo "done.  artifacts: benchmarks/results/  |  logs: $OUT/test_output.txt, $OUT/bench_output.txt"
